(** Predicate abstraction with counterexample-guided refinement — the
    BLAST-analog checker (abstract–check–refine, Henzinger et al.).

    The abstract domain is a conjunction of tracked predicate literals per
    CFG location; abstract reachability explores the ART with coverage;
    abstract error paths are replayed concretely (path formula fed to
    Fourier–Motzkin); infeasible paths contribute new predicates from the
    weakest-precondition chain; feasible paths are reported as bugs.

    Like the BLAST runs in the paper, analysis of large state-driven
    programs can exhaust its resources — that outcome is reported as
    [Aborted] (the paper's "abort exceptions"). *)

type result =
  | Safe  (** no assertion violation reachable (sound over-approximation) *)
  | Bug of { path_length : int; position : Minic.Ast.position }
  | Aborted of string  (** resource exhaustion: predicates/nodes/time *)
  | Unknown of string  (** refinement cannot make progress *)

type report = {
  result : result;
  iterations : int;  (** CEGAR refinement rounds *)
  predicates : int;  (** tracked predicates at the end *)
  art_nodes : int;  (** abstract states explored (last round) *)
  seconds : float;
}

val check :
  ?max_predicates:int ->
  ?max_art_nodes:int ->
  ?max_iterations:int ->
  ?timeout_seconds:float ->
  ?entry:string ->
  Minic.Typecheck.info ->
  report
(** Checks all assertions of the program (normalized internally). *)
