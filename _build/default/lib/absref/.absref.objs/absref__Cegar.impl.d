lib/absref/cegar.ml: Acfg Fourier_motzkin Hashtbl Linexpr List Map Minic Normalize Printf Queue Set String Unix
