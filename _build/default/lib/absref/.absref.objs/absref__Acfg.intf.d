lib/absref/acfg.mli: Format Linexpr Minic
