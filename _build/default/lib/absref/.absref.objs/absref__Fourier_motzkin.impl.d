lib/absref/fourier_motzkin.ml: Linexpr List Set
