lib/absref/normalize.ml: List Minic Option Printf
