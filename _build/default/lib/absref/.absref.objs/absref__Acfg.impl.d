lib/absref/acfg.ml: Array Format Linexpr List Minic Option Printf String
