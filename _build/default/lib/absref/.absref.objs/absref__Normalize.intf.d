lib/absref/normalize.mli: Minic
