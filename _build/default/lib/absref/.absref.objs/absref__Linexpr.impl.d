lib/absref/linexpr.ml: Format Int List Map Minic Option String
