lib/absref/fourier_motzkin.mli: Linexpr
