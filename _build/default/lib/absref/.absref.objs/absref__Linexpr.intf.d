lib/absref/linexpr.mli: Format Minic
