lib/absref/cegar.mli: Minic
