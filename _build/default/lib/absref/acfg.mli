(** Abstract control-flow graph over linear commands.

    Functions are inlined structurally (recursion is rejected — like the
    era's BLAST, the checker targets non-recursive control software),
    conditions are lowered to disjunctive edges of linear-atom
    conjunctions, and everything non-linear (bit operations, products of
    variables, memory, nondet) becomes a havoc — a sound
    over-approximation. [assert(c)] adds an edge guarded by [¬c] into the
    distinguished error node. *)

type cmd =
  | Assign of string * Linexpr.t
  | Havoc of string
  | Assume of Linexpr.t list  (** conjunction of atoms [e ≤ 0] *)
  | Skip

type edge = { dst : int; cmd : cmd; pos : Minic.Ast.position }

type t

exception Build_unsupported of string

val build : ?inline_depth:int -> Minic.Typecheck.info -> entry:string -> t
(** The program should be in {!Normalize.program} form. *)

val entry : t -> int
val error : t -> int
val num_nodes : t -> int
val succ : t -> int -> edge list
val assertion_count : t -> int
val pp_cmd : Format.formatter -> cmd -> unit
