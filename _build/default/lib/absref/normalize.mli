(** Normalization into "simple-statement" form for the CFG builder:

    - [for]/[do-while] loops are lowered to [while];
    - call, [nondet] and memory-read subexpressions are hoisted into fresh
      temporary declarations in front of the statement (loop conditions
      are rebuilt inside a [while(true)] with an explicit break, so the
      hoisted code re-executes each iteration);
    - after normalization, conditions and right-hand sides are pure
      (variables, constants, operators). *)

val program : Minic.Typecheck.info -> Minic.Typecheck.info
(** @raise Minic.Typecheck.Type_error if re-checking the transformed
    program fails (a bug). *)
