module SMap = Map.Make (String)

type t = { coeffs : int SMap.t; constant : int }

let zero = { coeffs = SMap.empty; constant = 0 }
let const k = { coeffs = SMap.empty; constant = k }
let var x = { coeffs = SMap.singleton x 1; constant = 0 }

let add a b =
  {
    coeffs =
      SMap.union
        (fun _ c1 c2 -> if c1 + c2 = 0 then None else Some (c1 + c2))
        a.coeffs b.coeffs;
    constant = a.constant + b.constant;
  }

let scale k e =
  if k = 0 then zero
  else
    {
      coeffs = SMap.map (fun c -> k * c) e.coeffs;
      constant = k * e.constant;
    }

let sub a b = add a (scale (-1) b)

let is_const e = if SMap.is_empty e.coeffs then Some e.constant else None
let coeff e x = match SMap.find_opt x e.coeffs with Some c -> c | None -> 0
let vars e = SMap.fold (fun x _ acc -> x :: acc) e.coeffs [] |> List.rev
let mentions e x = SMap.mem x e.coeffs

let subst e x r =
  match SMap.find_opt x e.coeffs with
  | None -> e
  | Some c ->
    let without = { e with coeffs = SMap.remove x e.coeffs } in
    add without (scale c r)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* e <= 0 with all coefficients divisible by g: divide through; the
   constant floor-divides toward the looser side (sound weakening is not
   allowed here, so only divide when exact or tightening is sound:
   e <= 0  <=>  e/g <= 0 when g | coeffs; constant may round down
   (floor), which preserves the integer solution set for <= 0). *)
let normalize e =
  let g = SMap.fold (fun _ c acc -> gcd c acc) e.coeffs 0 in
  if g <= 1 then e
  else
    {
      coeffs = SMap.map (fun c -> c / g) e.coeffs;
      constant =
        (* floor division *)
        (if e.constant >= 0 then (e.constant + g - 1) / g
         else e.constant / g);
    }

let equal a b = a.constant = b.constant && SMap.equal Int.equal a.coeffs b.coeffs

let compare a b =
  let c = Int.compare a.constant b.constant in
  if c <> 0 then c else SMap.compare Int.compare a.coeffs b.coeffs

let pp fmt e =
  let first = ref true in
  SMap.iter
    (fun x c ->
      if !first then begin
        first := false;
        if c = 1 then Format.fprintf fmt "%s" x
        else Format.fprintf fmt "%d*%s" c x
      end
      else if c >= 0 then
        if c = 1 then Format.fprintf fmt " + %s" x
        else Format.fprintf fmt " + %d*%s" c x
      else if c = -1 then Format.fprintf fmt " - %s" x
      else Format.fprintf fmt " - %d*%s" (-c) x)
    e.coeffs;
  if !first then Format.fprintf fmt "%d" e.constant
  else if e.constant > 0 then Format.fprintf fmt " + %d" e.constant
  else if e.constant < 0 then Format.fprintf fmt " - %d" (-e.constant)

let to_string e = Format.asprintf "%a <= 0" pp e

let negate_atom e = add (scale (-1) e) (const 1)
let atom_true e = match is_const e with Some k -> k <= 0 | None -> false
let atom_false e = match is_const e with Some k -> k > 0 | None -> false

let rec of_expr lookup (e : Minic.Ast.expr) =
  match e.Minic.Ast.edesc with
  | Minic.Ast.Int_lit v -> Some (const v)
  | Minic.Ast.Bool_lit b -> Some (const (if b then 1 else 0))
  | Minic.Ast.Var x -> (
    match lookup x with Some v -> Some (const v) | None -> Some (var x))
  | Minic.Ast.Unop (Minic.Ast.Neg, inner) ->
    Option.map (scale (-1)) (of_expr lookup inner)
  | Minic.Ast.Binop (Minic.Ast.Add, a, b) -> (
    match of_expr lookup a, of_expr lookup b with
    | Some la, Some lb -> Some (add la lb)
    | _ -> None)
  | Minic.Ast.Binop (Minic.Ast.Sub, a, b) -> (
    match of_expr lookup a, of_expr lookup b with
    | Some la, Some lb -> Some (sub la lb)
    | _ -> None)
  | Minic.Ast.Binop (Minic.Ast.Mul, a, b) -> (
    match of_expr lookup a, of_expr lookup b with
    | Some la, Some lb -> (
      match is_const la, is_const lb with
      | Some k, _ -> Some (scale k lb)
      | _, Some k -> Some (scale k la)
      | None, None -> None)
    | _ -> None)
  | Minic.Ast.Unop ((Minic.Ast.Lognot | Minic.Ast.Bitnot), _)
  | Minic.Ast.Binop _ | Minic.Ast.Index _ | Minic.Ast.Call _
  | Minic.Ast.Nondet _ | Minic.Ast.Mem_read _ ->
    None
