(** Linear integer expressions and atoms — the predicate language of the
    abstraction-refinement checker. An expression is [Σ cᵢ·xᵢ + k]; an atom
    is the constraint [e ≤ 0]. Negation is exact over the integers:
    [¬(e ≤ 0) = (1 - e ≤ 0)]. *)

type t

val zero : t
val const : int -> t
val var : string -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t

val is_const : t -> int option
val coeff : t -> string -> int
val vars : t -> string list
val mentions : t -> string -> bool

val subst : t -> string -> t -> t
(** [subst e x r] replaces [x] by [r]. *)

val normalize : t -> t
(** Divide by the gcd of all coefficients (keeping integer soundness for
    [e ≤ 0] atoms: the constant is rounded toward the satisfying side). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {2 Atoms: [e ≤ 0]} *)

val negate_atom : t -> t
(** [¬(e ≤ 0)] as an atom: [1 - e ≤ 0]. *)

val atom_true : t -> bool
(** The atom is trivially true (constant ≤ 0). *)

val atom_false : t -> bool

(** [of_expr lookup_const e] linearizes a MiniC expression ([None] when it
    is not linear: products of variables, bit operations, calls, ...). *)
val of_expr : (string -> int option) -> Minic.Ast.expr -> t option
