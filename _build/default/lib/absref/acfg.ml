module Ast = Minic.Ast

type cmd =
  | Assign of string * Linexpr.t
  | Havoc of string
  | Assume of Linexpr.t list
  | Skip

type edge = { dst : int; cmd : cmd; pos : Ast.position }

type t = {
  mutable succs : edge list array;
  mutable node_count : int;
  entry_node : int;
  error_node : int;
  mutable asserts : int;
}

exception Build_unsupported of string

let entry g = g.entry_node
let error g = g.error_node
let num_nodes g = g.node_count
let succ g n = List.rev g.succs.(n)
let assertion_count g = g.asserts

let pp_cmd fmt = function
  | Assign (x, e) -> Format.fprintf fmt "%s := %a" x Linexpr.pp e
  | Havoc x -> Format.fprintf fmt "havoc %s" x
  | Assume atoms ->
    Format.fprintf fmt "assume(%s)"
      (String.concat " && " (List.map Linexpr.to_string atoms))
  | Skip -> Format.fprintf fmt "skip"

let fresh_node g =
  if g.node_count = Array.length g.succs then begin
    let bigger = Array.make (2 * g.node_count) [] in
    Array.blit g.succs 0 bigger 0 g.node_count;
    g.succs <- bigger
  end;
  g.node_count <- g.node_count + 1;
  g.node_count - 1

let add_edge g src edge = g.succs.(src) <- edge :: g.succs.(src)

(* condition -> disjunctive normal form of atom conjunctions; [None]-ish
   unknown parts become unconstrained (true) *)
let rec dnf lookup positive (e : Ast.expr) : Linexpr.t list list =
  let linear a = Linexpr.of_expr lookup a in
  let unknown = [ [] ] (* one unconstrained disjunct *) in
  match e.Ast.edesc with
  | Ast.Bool_lit b -> if b = positive then [ [] ] else []
  | Ast.Unop (Ast.Lognot, inner) -> dnf lookup (not positive) inner
  | Ast.Binop (Ast.Land, a, b) ->
    if positive then product (dnf lookup true a) (dnf lookup true b)
    else dnf lookup false a @ dnf lookup false b
  | Ast.Binop (Ast.Lor, a, b) ->
    if positive then dnf lookup true a @ dnf lookup true b
    else product (dnf lookup false a) (dnf lookup false b)
  | Ast.Binop ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne as op), a, b)
    -> (
    match linear a, linear b with
    | Some la, Some lb -> (
      let diff = Linexpr.sub la lb in
      let le x y = Linexpr.normalize (Linexpr.sub x y) in
      ignore le;
      let atom_le = diff (* a - b <= 0 *) in
      let atom_lt = Linexpr.add diff (Linexpr.const 1) (* a - b + 1 <= 0 *) in
      let swap = Linexpr.scale (-1) diff in
      let atom_ge = swap (* b - a <= 0 *) in
      let atom_gt = Linexpr.add swap (Linexpr.const 1) in
      match op, positive with
      | Ast.Lt, true | Ast.Ge, false -> [ [ atom_lt ] ]
      | Ast.Lt, false | Ast.Ge, true -> [ [ atom_ge ] ]
      | Ast.Le, true | Ast.Gt, false -> [ [ atom_le ] ]
      | Ast.Le, false | Ast.Gt, true -> [ [ atom_gt ] ]
      | Ast.Eq, true | Ast.Ne, false -> [ [ atom_le; atom_ge ] ]
      | Ast.Eq, false | Ast.Ne, true -> [ [ atom_lt ]; [ atom_gt ] ]
      | _ -> assert false)
    | _ -> unknown)
  | Ast.Var _ | Ast.Int_lit _ -> (
    (* C truthiness of a linear value *)
    match linear e with
    | Some le ->
      if positive then
        (* e != 0 *)
        [ [ Linexpr.add le (Linexpr.const 1) ];
          [ Linexpr.add (Linexpr.scale (-1) le) (Linexpr.const 1) ] ]
      else [ [ le; Linexpr.scale (-1) le ] ] (* e = 0 *)
    | None -> unknown)
  | _ -> unknown

and product left right =
  List.concat_map (fun l -> List.map (fun r -> l @ r) right) left

(* ------------------------------------------------------------------ *)

type build_ctx = {
  g : t;
  info : Minic.Typecheck.info;
  inline_depth : int;
  mutable instance : int;
}

let lookup_const ctx name = Minic.Typecheck.const_value ctx.info name

(* rename map for locals: source name -> unique name *)
let rec build_stmts ctx rename depth call_stack ~breaks ~node stmts =
  List.fold_left
    (fun (rename, node) stmt ->
      build_stmt ctx rename depth call_stack ~breaks ~node stmt)
    (rename, node) stmts
  |> snd

(* returns (rename', exit node); dead ends return a fresh unreachable node *)
and build_stmt ctx rename depth call_stack ~breaks ~node (s : Ast.stmt) :
    (string * string) list * int =
  let g = ctx.g in
  let pos = s.Ast.spos in
  let resolve name =
    match List.assoc_opt name rename with Some r -> r | None -> name
  in
  let linear e =
    Option.map
      (fun le ->
        (* rewrite vars through the rename map *)
        List.fold_left
          (fun le v ->
            let r = resolve v in
            if String.equal r v then le
            else Linexpr.subst le v (Linexpr.var r))
          le (Linexpr.vars le))
      (Linexpr.of_expr (lookup_const ctx) e)
  in
  let dnf_renamed positive cond =
    dnf (lookup_const ctx) positive cond
    |> List.map
         (List.map (fun atom ->
              List.fold_left
                (fun atom v ->
                  let r = resolve v in
                  if String.equal r v then atom
                  else Linexpr.subst atom v (Linexpr.var r))
                atom (Linexpr.vars atom)))
  in
  let assign_to target e next =
    match e.Ast.edesc with
    | Ast.Call (callee, args) ->
      build_call ctx rename depth call_stack ~node ~pos callee args
        ~result:(Some target) ~next
    | Ast.Nondet (lo, hi) -> (
      add_edge g node { dst = next; cmd = Havoc target; pos };
      (* separate assume node for the range when linear *)
      match linear lo, linear hi with
      | Some llo, Some lhi ->
        (* rebuild: havoc ; assume lo <= t <= hi *)
        g.succs.(node) <- List.tl g.succs.(node);
        let mid = fresh_node g in
        add_edge g node { dst = mid; cmd = Havoc target; pos };
        add_edge g mid
          {
            dst = next;
            cmd =
              Assume
                [
                  Linexpr.sub llo (Linexpr.var target);
                  Linexpr.sub (Linexpr.var target) lhi;
                ];
            pos;
          };
        next
      | _ -> next)
    | _ -> (
      match linear e with
      | Some le ->
        add_edge g node { dst = next; cmd = Assign (target, le); pos };
        next
      | None ->
        add_edge g node { dst = next; cmd = Havoc target; pos };
        next)
  in
  match s.Ast.sdesc with
  | Ast.Block body ->
    (rename, build_stmts ctx rename depth call_stack ~breaks ~node body)
  | Ast.Decl (name, _typ, init) -> (
    ctx.instance <- ctx.instance + 1;
    let unique = Printf.sprintf "%s@%d" name ctx.instance in
    let rename = (name, unique) :: rename in
    match init with
    | None ->
      let next = fresh_node g in
      add_edge g node { dst = next; cmd = Assign (unique, Linexpr.const 0); pos };
      (rename, next)
    | Some e ->
      let next = fresh_node g in
      (rename, (ignore (assign_to unique e next); next)))
  | Ast.Expr e -> (
    match e.Ast.edesc with
    | Ast.Call (callee, args) ->
      let next = fresh_node g in
      ( rename,
        build_call ctx rename depth call_stack ~node ~pos callee args
          ~result:None ~next )
    | _ ->
      (* pure expression statement: no effect *)
      (rename, node))
  | Ast.Assign (lhs, e) -> (
    match lhs with
    | Ast.Lvar name ->
      let next = fresh_node g in
      ignore (assign_to (resolve name) e next);
      (rename, next)
    | Ast.Lindex _ | Ast.Lmem _ ->
      (* arrays and memory are abstracted away entirely *)
      (rename, node))
  | Ast.If (cond, then_s, else_s) ->
    let join = fresh_node g in
    let branch positive stmt_opt =
      List.iter
        (fun conj ->
          let branch_entry = fresh_node g in
          add_edge g node { dst = branch_entry; cmd = Assume conj; pos };
          let exit_node =
            match stmt_opt with
            | None -> branch_entry
            | Some body ->
              snd
                (build_stmt ctx rename depth call_stack ~breaks
                   ~node:branch_entry body)
          in
          add_edge g exit_node { dst = join; cmd = Skip; pos })
        (dnf_renamed positive cond)
    in
    branch true (Some then_s);
    branch false else_s;
    (rename, join)
  | Ast.While (cond, body) ->
    let head = fresh_node g in
    let exit_node = fresh_node g in
    add_edge g node { dst = head; cmd = Skip; pos };
    List.iter
      (fun conj ->
        let body_entry = fresh_node g in
        add_edge g head { dst = body_entry; cmd = Assume conj; pos };
        let body_exit =
          snd
            (build_stmt ctx rename depth call_stack ~breaks:(Some exit_node)
               ~node:body_entry body)
        in
        add_edge g body_exit { dst = head; cmd = Skip; pos })
      (dnf_renamed true cond);
    List.iter
      (fun conj ->
        add_edge g head { dst = exit_node; cmd = Assume conj; pos })
      (dnf_renamed false cond);
    (rename, exit_node)
  | Ast.Do_while _ | Ast.For _ ->
    raise (Build_unsupported "run Normalize.program first")
  | Ast.Switch (scrutinee, cases) ->
    (* lower to if-chains on equality; fallthrough handled by sequencing *)
    let exit_node = fresh_node g in
    let value e = linear e in
    (match value scrutinee with
    | None ->
      (* unknown scrutinee: all cases possible *)
      List.iter
        (fun (case : Ast.switch_case) ->
          let entry_node = fresh_node g in
          add_edge g node { dst = entry_node; cmd = Skip; pos };
          let body_exit =
            build_stmts ctx rename depth call_stack ~breaks:(Some exit_node)
              ~node:entry_node case.Ast.body
          in
          add_edge g body_exit { dst = exit_node; cmd = Skip; pos })
        cases;
      add_edge g node { dst = exit_node; cmd = Skip; pos }
    | Some sv ->
      (* entry points with equality assumptions; fallthrough chains *)
      let entries =
        List.map
          (fun (case : Ast.switch_case) ->
            let entry_node = fresh_node g in
            (case, entry_node))
          cases
      in
      let rec chain = function
        | [] -> ()
        | ((case : Ast.switch_case), entry_node) :: rest ->
          let body_exit =
            build_stmts ctx rename depth call_stack ~breaks:(Some exit_node)
              ~node:entry_node case.Ast.body
          in
          (match rest with
          | (_, next_entry) :: _ ->
            add_edge g body_exit { dst = next_entry; cmd = Skip; pos }
          | [] -> add_edge g body_exit { dst = exit_node; cmd = Skip; pos });
          chain rest
      in
      chain entries;
      let all_case_values =
        List.concat_map
          (fun (case : Ast.switch_case) ->
            List.filter_map
              (function Ast.Case v -> Some v | Ast.Default -> None)
              case.Ast.labels)
          cases
      in
      List.iter
        (fun ((case : Ast.switch_case), entry_node) ->
          List.iter
            (function
              | Ast.Case v ->
                add_edge g node
                  {
                    dst = entry_node;
                    cmd =
                      Assume
                        [
                          Linexpr.sub sv (Linexpr.const v);
                          Linexpr.sub (Linexpr.const v) sv;
                        ];
                    pos;
                  }
              | Ast.Default ->
                (* default: scrutinee differs from every case value *)
                add_edge g node
                  {
                    dst = entry_node;
                    cmd = Skip (* over-approximate the inequality *);
                    pos;
                  })
            case.Ast.labels)
        entries;
      (* no case matches and no default: skip past *)
      if
        not
          (List.exists
             (fun (case : Ast.switch_case) ->
               List.mem Ast.Default case.Ast.labels)
             cases)
      then add_edge g node { dst = exit_node; cmd = Skip; pos };
      ignore all_case_values);
    (rename, exit_node)
  | Ast.Break -> (
    match breaks with
    | Some target ->
      add_edge g node { dst = target; cmd = Skip; pos };
      (rename, fresh_node g)
    | None -> raise (Build_unsupported "break outside loop"))
  | Ast.Continue ->
    raise (Build_unsupported "continue is not supported by the CFG builder")
  | Ast.Return _ | Ast.Halt ->
    (* return value flow is not tracked; end this inline instance *)
    add_edge g node { dst = List.assoc "%exit" rename |> int_of_string; cmd = Skip; pos }
    |> fun () -> (rename, fresh_node g)
  | Ast.Assert cond ->
    g.asserts <- g.asserts + 1;
    List.iter
      (fun conj ->
        add_edge g node { dst = g.error_node; cmd = Assume conj; pos })
      (dnf_renamed false cond);
    let next = fresh_node g in
    List.iter
      (fun conj -> add_edge g node { dst = next; cmd = Assume conj; pos })
      (dnf_renamed true cond);
    (rename, next)
  | Ast.Assume cond ->
    let next = fresh_node g in
    List.iter
      (fun conj -> add_edge g node { dst = next; cmd = Assume conj; pos })
      (dnf_renamed true cond);
    (rename, next)

and build_call ctx rename depth call_stack ~node ~pos callee args ~result ~next =
  let g = ctx.g in
  if List.mem callee call_stack then
    raise (Build_unsupported ("recursive call to " ^ callee));
  if depth >= ctx.inline_depth then
    raise (Build_unsupported "inline depth exceeded");
  let func =
    match Ast.find_func (Minic.Typecheck.program ctx.info) callee with
    | Some f -> f
    | None -> raise (Build_unsupported ("unknown function " ^ callee))
  in
  (* bind arguments to renamed parameters *)
  ctx.instance <- ctx.instance + 1;
  let instance = ctx.instance in
  let param_rename =
    List.map
      (fun (p, _) -> (p, Printf.sprintf "%s@%s%d" p callee instance))
      func.Ast.f_params
  in
  let node = ref node in
  List.iter2
    (fun (_, unique) arg ->
      let mid = fresh_node g in
      let le =
        Option.map
          (fun le ->
            List.fold_left
              (fun le v ->
                match List.assoc_opt v rename with
                | Some r -> Linexpr.subst le v (Linexpr.var r)
                | None -> le)
              le (Linexpr.vars le))
          (Linexpr.of_expr (lookup_const ctx) arg)
      in
      (match le with
      | Some le ->
        add_edge g !node { dst = mid; cmd = Assign (unique, le); pos }
      | None -> add_edge g !node { dst = mid; cmd = Havoc unique; pos });
      node := mid)
    (List.map snd param_rename |> List.map (fun u -> ("", u)))
    args;
  (* return joins at a dedicated exit node *)
  let exit_node = fresh_node g in
  let body_rename = param_rename @ [ ("%exit", string_of_int exit_node) ] in
  let body_exit =
    build_stmts ctx body_rename (depth + 1) (callee :: call_stack)
      ~breaks:None ~node:!node func.Ast.f_body
  in
  add_edge g body_exit { dst = exit_node; cmd = Skip; pos };
  (* result value is not tracked through returns: havoc it *)
  match result with
  | None ->
    add_edge g exit_node { dst = next; cmd = Skip; pos };
    next
  | Some target ->
    add_edge g exit_node { dst = next; cmd = Havoc target; pos };
    next

let build ?(inline_depth = 24) info ~entry =
  let g =
    {
      succs = Array.make 1024 [];
      node_count = 0;
      entry_node = 0;
      error_node = 0;
      asserts = 0;
    }
  in
  let entry_node = fresh_node g in
  let error_node = fresh_node g in
  let g = { g with entry_node; error_node } in
  let ctx = { g; info; inline_depth; instance = 0 } in
  (* initialize globals *)
  let prog = Minic.Typecheck.program info in
  let node = ref entry_node in
  List.iter
    (fun (global : Ast.global) ->
      if not global.Ast.g_const then
        match global.Ast.g_type with
        | Ast.Tarray _ -> ()
        | _ ->
          let value =
            match global.Ast.g_init with
            | None -> Some (Linexpr.const 0)
            | Some e -> Linexpr.of_expr (lookup_const ctx) e
          in
          let next = fresh_node g in
          (match value with
          | Some le ->
            add_edge g !node
              { dst = next; cmd = Assign (global.Ast.g_name, le); pos = global.Ast.g_pos }
          | None ->
            add_edge g !node
              { dst = next; cmd = Havoc global.Ast.g_name; pos = global.Ast.g_pos });
          node := next)
    prog.Ast.globals;
  let final = fresh_node g in
  ignore
    (build_call ctx [] 0 [] ~node:!node ~pos:Ast.dummy_pos entry []
       ~result:None ~next:final);
  g
