module Ast = Minic.Ast

let counter = ref 0

let fresh_temp () =
  incr counter;
  Printf.sprintf "__t%d" !counter

(* hoist impure subexpressions (calls, nondet, mem reads) out of [e];
   returns (prelude statements, pure expression) *)
let rec hoist_expr (e : Ast.expr) =
  let mk edesc = { e with Ast.edesc } in
  match e.Ast.edesc with
  | Ast.Int_lit _ | Ast.Bool_lit _ | Ast.Var _ -> ([], e)
  | Ast.Index (name, index) ->
    let pre, index = hoist_expr index in
    (pre, mk (Ast.Index (name, index)))
  | Ast.Unop (op, inner) ->
    let pre, inner = hoist_expr inner in
    (pre, mk (Ast.Unop (op, inner)))
  | Ast.Binop (op, a, b) ->
    (* note: hoisting out of && / || loses lazy evaluation of side
       effects; acceptable for the abstraction (it over-approximates) *)
    let pre_a, a = hoist_expr a in
    let pre_b, b = hoist_expr b in
    (pre_a @ pre_b, mk (Ast.Binop (op, a, b)))
  | Ast.Call (name, args) ->
    let pres, args = List.split (List.map hoist_expr args) in
    let temp = fresh_temp () in
    ( List.concat pres
      @ [ Ast.stmt (Ast.Decl (temp, Ast.Tint, Some (mk (Ast.Call (name, args))))) ],
      Ast.var temp )
  | Ast.Nondet (lo, hi) ->
    let pre_lo, lo = hoist_expr lo in
    let pre_hi, hi = hoist_expr hi in
    let temp = fresh_temp () in
    ( pre_lo @ pre_hi
      @ [ Ast.stmt (Ast.Decl (temp, Ast.Tint, Some (mk (Ast.Nondet (lo, hi))))) ],
      Ast.var temp )
  | Ast.Mem_read addr ->
    let pre, addr = hoist_expr addr in
    let temp = fresh_temp () in
    ( pre
      @ [ Ast.stmt (Ast.Decl (temp, Ast.Tint, Some (mk (Ast.Mem_read addr)))) ],
      Ast.var temp )

let block stmts = Ast.stmt (Ast.Block stmts)

let rec simplify_stmt (s : Ast.stmt) : Ast.stmt list =
  let mk sdesc = { s with Ast.sdesc } in
  match s.Ast.sdesc with
  | Ast.Block body -> [ mk (Ast.Block (simplify_list body)) ]
  | Ast.Decl (name, typ, init) -> (
    match init with
    | None -> [ s ]
    | Some e ->
      let pre, e = hoist_expr e in
      pre @ [ mk (Ast.Decl (name, typ, Some e)) ])
  | Ast.Expr e -> (
    match e.Ast.edesc with
    | Ast.Call (name, args) ->
      let pres, args = List.split (List.map hoist_expr args) in
      List.concat pres
      @ [ mk (Ast.Expr { e with Ast.edesc = Ast.Call (name, args) }) ]
    | _ ->
      let pre, e = hoist_expr e in
      pre @ [ mk (Ast.Expr e) ])
  | Ast.Assign (lhs, e) ->
    let pre_l, lhs =
      match lhs with
      | Ast.Lvar _ -> ([], lhs)
      | Ast.Lindex (name, index) ->
        let pre, index = hoist_expr index in
        (pre, Ast.Lindex (name, index))
      | Ast.Lmem addr ->
        let pre, addr = hoist_expr addr in
        (pre, Ast.Lmem addr)
    in
    let pre_e, e = hoist_expr e in
    pre_l @ pre_e @ [ mk (Ast.Assign (lhs, e)) ]
  | Ast.If (cond, then_s, else_s) ->
    let pre, cond = hoist_expr cond in
    pre
    @ [
        mk
          (Ast.If
             ( cond,
               block (simplify_stmt then_s),
               Option.map (fun e -> block (simplify_stmt e)) else_s ));
      ]
  | Ast.While (cond, body) ->
    let pre, pure_cond = hoist_expr cond in
    if pre = [] then [ mk (Ast.While (pure_cond, block (simplify_stmt body))) ]
    else
      (* the condition has effects: re-evaluate them inside the loop *)
      [
        mk
          (Ast.While
             ( Ast.expr (Ast.Bool_lit true),
               block
                 (pre
                 @ [
                     Ast.stmt
                       (Ast.If
                          ( Ast.expr (Ast.Unop (Ast.Lognot, pure_cond)),
                            Ast.stmt Ast.Break,
                            None ));
                   ]
                 @ simplify_stmt body) ));
      ]
  | Ast.Do_while (body, cond) ->
    (* body; while (cond) body *)
    simplify_stmt body
    @ simplify_stmt (mk (Ast.While (cond, body)))
  | Ast.For (init, cond, step, body) ->
    let init_stmts = match init with None -> [] | Some i -> simplify_stmt i in
    let cond_expr =
      match cond with None -> Ast.expr (Ast.Bool_lit true) | Some c -> c
    in
    let body_with_step =
      block
        (simplify_stmt body
        @ (match step with None -> [] | Some st -> simplify_stmt st))
    in
    init_stmts @ simplify_stmt (mk (Ast.While (cond_expr, body_with_step)))
  | Ast.Switch (scrutinee, cases) ->
    let pre, scrutinee = hoist_expr scrutinee in
    pre
    @ [
        mk
          (Ast.Switch
             ( scrutinee,
               List.map
                 (fun case ->
                   { case with Ast.body = simplify_list case.Ast.body })
                 cases ));
      ]
  | Ast.Return (Some e) ->
    let pre, e = hoist_expr e in
    pre @ [ mk (Ast.Return (Some e)) ]
  | Ast.Return None | Ast.Break | Ast.Continue | Ast.Halt -> [ s ]
  | Ast.Assert e ->
    let pre, e = hoist_expr e in
    pre @ [ mk (Ast.Assert e) ]
  | Ast.Assume e ->
    let pre, e = hoist_expr e in
    pre @ [ mk (Ast.Assume e) ]

and simplify_list stmts = List.concat_map simplify_stmt stmts

let program info =
  let prog = Minic.Typecheck.program info in
  let funcs =
    List.map
      (fun (f : Ast.func) -> { f with Ast.f_body = simplify_list f.Ast.f_body })
      prog.Ast.funcs
  in
  Minic.Typecheck.check { prog with Ast.funcs }
