lib/automata/monitor.ml: Ar_automaton Array Formula Il Progression String Verdict
