lib/automata/monitor.mli: Ar_automaton Formula Il Verdict
