lib/automata/cube.ml: Array Hashtbl Int List Printf Set String
