lib/automata/progression.ml: Formula Verdict
