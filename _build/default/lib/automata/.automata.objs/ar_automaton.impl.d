lib/automata/ar_automaton.ml: Array Formula Hashtbl List Printf Progression Queue String Unix Verdict
