lib/automata/cube.mli:
