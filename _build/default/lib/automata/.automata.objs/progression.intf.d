lib/automata/progression.mli: Formula Verdict
