lib/automata/il.ml: Ar_automaton Array Cube Format Hashtbl Int List Printf String
