lib/automata/il.mli: Ar_automaton Cube Format
