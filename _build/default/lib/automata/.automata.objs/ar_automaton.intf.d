lib/automata/ar_automaton.mli: Formula
