type literal = Zero | One | Dash
type t = literal array

let of_minterm ~width mask =
  Array.init width (fun i -> if mask land (1 lsl i) <> 0 then One else Zero)

let matches cube mask =
  let ok = ref true in
  Array.iteri
    (fun i lit ->
      match lit with
      | Dash -> ()
      | One -> if mask land (1 lsl i) = 0 then ok := false
      | Zero -> if mask land (1 lsl i) <> 0 then ok := false)
    cube;
  !ok

let minterms cube =
  let width = Array.length cube in
  let rec expand i masks =
    if i >= width then masks
    else
      let masks' =
        match cube.(i) with
        | Zero -> masks
        | One -> List.map (fun m -> m lor (1 lsl i)) masks
        | Dash -> masks @ List.map (fun m -> m lor (1 lsl i)) masks
      in
      expand (i + 1) masks'
  in
  List.sort Int.compare (expand 0 [ 0 ])

(* Merge two cubes differing in exactly one specified position. *)
let try_merge a b =
  let width = Array.length a in
  let diff = ref (-1) in
  let ok = ref true in
  for i = 0 to width - 1 do
    if a.(i) <> b.(i) then
      if a.(i) = Dash || b.(i) = Dash then ok := false
      else if !diff >= 0 then ok := false
      else diff := i
  done;
  if !ok && !diff >= 0 then begin
    let merged = Array.copy a in
    merged.(!diff) <- Dash;
    Some merged
  end
  else None

let minimize ~width masks =
  if masks = [] then []
  else begin
    let module IS = Set.Make (Int) in
    let wanted = IS.of_list masks in
    (* Prime cube generation: iteratively merge adjacent cubes. *)
    let current = ref (List.map (of_minterm ~width) (IS.elements wanted)) in
    let primes = ref [] in
    let continue = ref true in
    while !continue do
      let cubes = Array.of_list !current in
      let used = Array.make (Array.length cubes) false in
      let next = Hashtbl.create 16 in
      for i = 0 to Array.length cubes - 1 do
        for j = i + 1 to Array.length cubes - 1 do
          match try_merge cubes.(i) cubes.(j) with
          | Some merged ->
            used.(i) <- true;
            used.(j) <- true;
            Hashtbl.replace next merged ()
          | None -> ()
        done
      done;
      for i = 0 to Array.length cubes - 1 do
        if not used.(i) then primes := cubes.(i) :: !primes
      done;
      let merged_list = Hashtbl.fold (fun c () acc -> c :: acc) next [] in
      if merged_list = [] then continue := false else current := merged_list
    done;
    (* Greedy cover of the wanted minterms by prime cubes.  Primes only
       cover wanted minterms by construction (merging preserves coverage of
       the original on-set). *)
    let primes = Array.of_list !primes in
    let cover = ref [] in
    let remaining = ref wanted in
    while not (IS.is_empty !remaining) do
      let best = ref (-1) and best_gain = ref 0 in
      Array.iteri
        (fun i cube ->
          let gain =
            List.length
              (List.filter (fun m -> IS.mem m !remaining) (minterms cube))
          in
          if gain > !best_gain then begin
            best := i;
            best_gain := gain
          end)
        primes;
      assert (!best >= 0);
      let chosen = primes.(!best) in
      cover := chosen :: !cover;
      remaining :=
        List.fold_left (fun set m -> IS.remove m set) !remaining
          (minterms chosen)
    done;
    List.rev !cover
  end

let to_string cube =
  String.init (Array.length cube) (fun i ->
      match cube.(i) with Zero -> '0' | One -> '1' | Dash -> '-')

let of_string text =
  Array.init (String.length text) (fun i ->
      match text.[i] with
      | '0' -> Zero
      | '1' -> One
      | '-' -> Dash
      | c -> invalid_arg (Printf.sprintf "Cube.of_string: %C" c))
