(** Intermediate Language (IL) representation of AR-automata.

    SCTC's flow is: property text → AR-automaton in IL form → executable
    monitor. The IL is a flat, serializable automaton description whose
    transition guards are sums of cubes over the proposition vector — the
    representation a SystemC code generator would consume. This module
    converts explicit automata to IL, pretty-prints, and parses the textual
    form back (round-trip stable), so IL files can be stored next to a
    design and re-loaded without re-synthesis. *)

type kind = Accept | Reject | Pend

type transition = {
  guard : Cube.t list;  (** disjunction of cubes over the proposition order *)
  target : int;
}

type state = { kind : kind; outgoing : transition list }

type t = {
  name : string;
  props : string array;
  initial : int;
  states : state array;
}

val of_automaton : name:string -> Ar_automaton.t -> t
(** Guards are minimized cube covers of the assignment sets per successor.
    Accept/Reject states get no outgoing transitions (they are absorbing). *)

val next : t -> int -> int -> int
(** [next il state mask] follows the transition whose guard covers [mask];
    absorbing states return themselves.
    @raise Invalid_argument if no guard matches (malformed IL). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

exception Parse_error of string

val parse : string -> t
(** Parses the textual form produced by {!pp}. *)

val num_transitions : t -> int
(** Total transition (cube) count — the IL size metric. *)
