type engine =
  | Formula_engine of { initial : Formula.t; mutable current : Formula.t }
  | Automaton_engine of { automaton : Ar_automaton.t; mutable state : int }
  | Il_engine of { il : Il.t; mutable state : int }

type t = {
  m_name : string;
  engine : engine;
  support : string array; (* proposition names, bitmask order for explicit *)
  samplers : (unit -> bool) array;
  mutable step_count : int;
  mutable last_verdict : Verdict.t;
}

let resolve_support ~binding support =
  Array.map (fun name -> binding name) support

let make name engine support binding =
  {
    m_name = name;
    engine;
    support;
    samplers = resolve_support ~binding support;
    step_count = 0;
    last_verdict = Verdict.Pending;
  }

let engine_verdict = function
  | Formula_engine e -> Progression.verdict e.current
  | Automaton_engine e -> (
    match Ar_automaton.kind e.automaton e.state with
    | Ar_automaton.Accept -> Verdict.True
    | Ar_automaton.Reject -> Verdict.False
    | Ar_automaton.Pend -> Verdict.Pending)
  | Il_engine e -> (
    match e.il.Il.states.(e.state).Il.kind with
    | Il.Accept -> Verdict.True
    | Il.Reject -> Verdict.False
    | Il.Pend -> Verdict.Pending)

let of_formula ~name formula ~binding =
  let support = Array.of_list (Formula.props formula) in
  let engine = Formula_engine { initial = formula; current = formula } in
  let monitor = make name engine support binding in
  monitor.last_verdict <- engine_verdict engine;
  monitor

let of_automaton ~name automaton ~binding =
  let engine =
    Automaton_engine { automaton; state = Ar_automaton.initial automaton }
  in
  let monitor = make name engine (Ar_automaton.props automaton) binding in
  monitor.last_verdict <- engine_verdict engine;
  monitor

let of_il ~name il ~binding =
  let engine = Il_engine { il; state = il.Il.initial } in
  let monitor = make name engine il.Il.props binding in
  monitor.last_verdict <- engine_verdict engine;
  monitor

let name monitor = monitor.m_name
let verdict monitor = monitor.last_verdict
let steps monitor = monitor.step_count

(* Sample every supporting proposition exactly once per step. *)
let sample_all monitor =
  Array.map (fun sampler -> sampler ()) monitor.samplers

let mask_of_samples samples =
  let mask = ref 0 in
  Array.iteri (fun i value -> if value then mask := !mask lor (1 lsl i)) samples;
  !mask

let step monitor =
  if Verdict.is_final monitor.last_verdict then begin
    monitor.step_count <- monitor.step_count + 1;
    monitor.last_verdict
  end
  else begin
    let samples = sample_all monitor in
    (match monitor.engine with
    | Formula_engine e ->
      let valuation name =
        let rec find i =
          if i >= Array.length monitor.support then
            invalid_arg ("Monitor: proposition not in support: " ^ name)
          else if String.equal monitor.support.(i) name then samples.(i)
          else find (i + 1)
        in
        find 0
      in
      e.current <- Progression.step e.current valuation
    | Automaton_engine e ->
      e.state <- Ar_automaton.next e.automaton e.state (mask_of_samples samples)
    | Il_engine e -> e.state <- Il.next e.il e.state (mask_of_samples samples));
    monitor.step_count <- monitor.step_count + 1;
    monitor.last_verdict <- engine_verdict monitor.engine;
    monitor.last_verdict
  end

let finalize ?(strong = false) monitor =
  match monitor.engine with
  | Formula_engine e -> Progression.finalize ~strong e.current
  | Automaton_engine e ->
    Progression.finalize ~strong
      (Ar_automaton.state_formula e.automaton e.state)
  | Il_engine _ -> monitor.last_verdict

let reset monitor =
  (match monitor.engine with
  | Formula_engine e -> e.current <- e.initial
  | Automaton_engine e -> e.state <- Ar_automaton.initial e.automaton
  | Il_engine e -> e.state <- e.il.Il.initial);
  monitor.step_count <- 0;
  monitor.last_verdict <- engine_verdict monitor.engine
