type kind = Accept | Reject | Pend

type transition = { guard : Cube.t list; target : int }
type state = { kind : kind; outgoing : transition list }

type t = {
  name : string;
  props : string array;
  initial : int;
  states : state array;
}

let kind_of_ar = function
  | Ar_automaton.Accept -> Accept
  | Ar_automaton.Reject -> Reject
  | Ar_automaton.Pend -> Pend

let of_automaton ~name automaton =
  let width = Ar_automaton.num_props automaton in
  let num_assignments = 1 lsl width in
  let states =
    Array.init (Ar_automaton.num_states automaton) (fun id ->
        let kind = kind_of_ar (Ar_automaton.kind automaton id) in
        match kind with
        | Accept | Reject -> { kind; outgoing = [] }
        | Pend ->
          (* group assignments by successor, then minimize each group *)
          let groups : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
          for mask = 0 to num_assignments - 1 do
            let target = Ar_automaton.next automaton id mask in
            match Hashtbl.find_opt groups target with
            | Some masks -> masks := mask :: !masks
            | None -> Hashtbl.replace groups target (ref [ mask ])
          done;
          let outgoing =
            Hashtbl.fold
              (fun target masks acc ->
                { guard = Cube.minimize ~width !masks; target } :: acc)
              groups []
            |> List.sort (fun a b -> Int.compare a.target b.target)
          in
          { kind; outgoing })
  in
  {
    name;
    props = Ar_automaton.props automaton;
    initial = Ar_automaton.initial automaton;
    states;
  }

let next il state mask =
  let s = il.states.(state) in
  match s.kind with
  | Accept | Reject -> state
  | Pend ->
    let rec search = function
      | [] ->
        invalid_arg
          (Printf.sprintf "Il.next: state %d has no guard for mask %d" state
             mask)
      | t :: rest ->
        if List.exists (fun cube -> Cube.matches cube mask) t.guard then
          t.target
        else search rest
    in
    search s.outgoing

let kind_to_string = function
  | Accept -> "accept"
  | Reject -> "reject"
  | Pend -> "pending"

let pp fmt il =
  Format.fprintf fmt "automaton %s {@\n" il.name;
  Format.fprintf fmt "  props: %s;@\n"
    (String.concat ", " (Array.to_list il.props));
  Format.fprintf fmt "  initial: %d;@\n" il.initial;
  Array.iteri
    (fun id state ->
      Format.fprintf fmt "  state %d %s {@\n" id (kind_to_string state.kind);
      List.iter
        (fun t ->
          List.iter
            (fun cube ->
              Format.fprintf fmt "    on %s -> %d;@\n" (Cube.to_string cube)
                t.target)
            t.guard)
        state.outgoing;
      Format.fprintf fmt "  }@\n")
    il.states;
  Format.fprintf fmt "}@\n"

let to_string il = Format.asprintf "%a" pp il

exception Parse_error of string

(* Split "cube -> target" at the (space-delimited) arrow; cubes themselves
   may contain '-' as don't-care, so the separator is exactly " -> ". *)
let split_arrow text =
  let sep = " -> " in
  let sep_len = String.length sep in
  let rec find i =
    if i + sep_len > String.length text then
      raise (Parse_error ("missing ' -> ' in " ^ text))
    else if String.sub text i sep_len = sep then i
    else find (i + 1)
  in
  let j = find 0 in
  ( String.sub text 0 j,
    String.sub text (j + sep_len) (String.length text - j - sep_len) )

(* A small line-oriented parser for the format printed above. *)
let parse text =
  let fail msg = raise (Parse_error msg) in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun line -> line <> "")
  in
  let name = ref "" in
  let props = ref [||] in
  let initial = ref 0 in
  let states : (int, kind * transition list) Hashtbl.t = Hashtbl.create 16 in
  let current = ref None in
  let strip_suffix suffix s =
    if String.length s >= String.length suffix
       && String.sub s (String.length s - String.length suffix)
            (String.length suffix)
          = suffix
    then String.sub s 0 (String.length s - String.length suffix)
    else fail (Printf.sprintf "expected %S at end of %S" suffix s)
  in
  List.iter
    (fun line ->
      if line = "}" then current := None
      else if String.length line >= 10 && String.sub line 0 10 = "automaton " then
        name := String.trim (strip_suffix "{" (String.sub line 10 (String.length line - 10)))
      else if String.length line >= 7 && String.sub line 0 7 = "props: " then
        props :=
          String.sub line 7 (String.length line - 7)
          |> strip_suffix ";"
          |> String.split_on_char ','
          |> List.map String.trim
          |> List.filter (fun s -> s <> "")
          |> Array.of_list
      else if String.length line >= 9 && String.sub line 0 9 = "initial: " then
        initial :=
          int_of_string (strip_suffix ";" (String.sub line 9 (String.length line - 9)))
      else if String.length line >= 6 && String.sub line 0 6 = "state " then begin
        let body = strip_suffix "{" (String.sub line 6 (String.length line - 6)) in
        match String.split_on_char ' ' (String.trim body) with
        | [ id_text; kind_text ] ->
          let id = int_of_string id_text in
          let kind =
            match kind_text with
            | "accept" -> Accept
            | "reject" -> Reject
            | "pending" -> Pend
            | other -> fail ("unknown state kind " ^ other)
          in
          Hashtbl.replace states id (kind, []);
          current := Some id
        | _ -> fail ("malformed state header: " ^ line)
      end
      else if String.length line >= 3 && String.sub line 0 3 = "on " then begin
        match !current with
        | None -> fail "transition outside state block"
        | Some id ->
          let body = strip_suffix ";" (String.sub line 3 (String.length line - 3)) in
          let cube_text, target_text = split_arrow body in
          let cube = Cube.of_string (String.trim cube_text) in
          let target = int_of_string (String.trim target_text) in
          let kind, transitions = Hashtbl.find states id in
          Hashtbl.replace states id
            (kind, { guard = [ cube ]; target } :: transitions)
      end
      else fail ("unrecognized line: " ^ line))
    lines;
  let max_id = Hashtbl.fold (fun id _ acc -> max id acc) states (-1) in
  let state_array =
    Array.init (max_id + 1) (fun id ->
        match Hashtbl.find_opt states id with
        | None -> fail (Printf.sprintf "missing state %d" id)
        | Some (kind, transitions) ->
          (* merge single-cube transitions with equal targets *)
          let grouped : (int, Cube.t list ref) Hashtbl.t = Hashtbl.create 8 in
          List.iter
            (fun t ->
              match t.guard with
              | [ cube ] -> (
                match Hashtbl.find_opt grouped t.target with
                | Some cubes -> cubes := cube :: !cubes
                | None -> Hashtbl.replace grouped t.target (ref [ cube ]))
              | _ -> assert false)
            transitions;
          let outgoing =
            Hashtbl.fold
              (fun target cubes acc ->
                { guard = List.rev !cubes; target } :: acc)
              grouped []
            |> List.sort (fun a b -> Int.compare a.target b.target)
          in
          { kind; outgoing })
  in
  { name = !name; props = !props; initial = !initial; states = state_array }

let num_transitions il =
  Array.fold_left
    (fun acc state ->
      List.fold_left (fun acc t -> acc + List.length t.guard) acc state.outgoing)
    0 il.states
