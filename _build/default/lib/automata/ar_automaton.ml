type state_kind = Accept | Reject | Pend

type t = {
  formula : Formula.t;
  props : string array;
  states : Formula.t array;
  kinds : state_kind array;
  delta : int array array; (* delta.(state).(assignment mask) *)
  initial : int;
  build_seconds : float;
}

exception Too_large of int

let kind_of_formula f =
  match Progression.verdict f with
  | Verdict.True -> Accept
  | Verdict.False -> Reject
  | Verdict.Pending -> Pend

let synthesize ?(max_states = 200_000) formula =
  let started = Unix.gettimeofday () in
  let props = Array.of_list (Formula.props formula) in
  let num_props = Array.length props in
  if num_props > 16 then
    invalid_arg "Ar_automaton.synthesize: more than 16 propositions";
  let num_assignments = 1 lsl num_props in
  let valuation_of_mask mask name =
    let rec find i =
      if i >= num_props then
        invalid_arg ("Ar_automaton: unknown proposition " ^ name)
      else if String.equal props.(i) name then mask land (1 lsl i) <> 0
      else find (i + 1)
    in
    find 0
  in
  let index_of : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let states = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let intern f =
    match Hashtbl.find_opt index_of (Formula.hash f) with
    | Some id -> id
    | None ->
      let id = !count in
      incr count;
      if !count > max_states then raise (Too_large !count);
      Hashtbl.replace index_of (Formula.hash f) id;
      states := f :: !states;
      Queue.add (f, id) queue;
      id
  in
  let initial = intern formula in
  let rows = Hashtbl.create 256 in
  while not (Queue.is_empty queue) do
    let f, id = Queue.pop queue in
    let row =
      match kind_of_formula f with
      | Accept | Reject ->
        (* absorbing *)
        Array.make num_assignments id
      | Pend ->
        Array.init num_assignments (fun mask ->
            intern (Progression.step f (valuation_of_mask mask)))
    in
    Hashtbl.replace rows id row
  done;
  let states = Array.of_list (List.rev !states) in
  let delta =
    Array.init (Array.length states) (fun id -> Hashtbl.find rows id)
  in
  let kinds = Array.map kind_of_formula states in
  {
    formula;
    props;
    states;
    kinds;
    delta;
    initial;
    build_seconds = Unix.gettimeofday () -. started;
  }

let formula a = a.formula
let props a = a.props
let num_states a = Array.length a.states
let num_props a = Array.length a.props
let initial a = a.initial
let kind a state = a.kinds.(state)
let next a state mask = a.delta.(state).(mask)
let state_formula a state = a.states.(state)
let build_seconds a = a.build_seconds

let mask_of_valuation a valuation =
  let mask = ref 0 in
  Array.iteri (fun i name -> if valuation name then mask := !mask lor (1 lsl i))
    a.props;
  !mask

let stats a =
  Printf.sprintf "%d states, %d propositions, built in %.3fs" (num_states a)
    (num_props a) a.build_seconds
