(** Executable property monitors.

    A monitor binds a property to the system under verification through a
    name-resolution function (typically {!Proposition.Table.binding}) and is
    stepped once per trigger — a clock edge in the paper's approach 1, a
    program-counter event in approach 2. Each step samples every supporting
    proposition exactly once (so stateful propositions advance uniformly)
    and advances the AR-automaton.

    Two engines are provided: the explicit pre-synthesized AR-automaton
    ([of_automaton]/[of_il]) and on-the-fly formula progression
    ([of_formula]); they compute identical verdicts. *)

type t

val of_formula :
  name:string -> Formula.t -> binding:(string -> unit -> bool) -> t
(** On-the-fly engine. *)

val of_automaton :
  name:string -> Ar_automaton.t -> binding:(string -> unit -> bool) -> t
(** Explicit engine. *)

val of_il : name:string -> Il.t -> binding:(string -> unit -> bool) -> t
(** Explicit engine driven by an IL description. *)

val name : t -> string

val step : t -> Verdict.t
(** Sample propositions, advance, and return the verdict after this step.
    Once the verdict is final ({!Verdict.is_final}), further steps are
    no-ops. *)

val verdict : t -> Verdict.t
val steps : t -> int

val finalize : ?strong:bool -> t -> Verdict.t
(** End-of-trace verdict, see {!Progression.finalize}. For explicit engines
    built from IL the obligation formula is unavailable, so a pending IL
    monitor finalizes to [Pending] regardless of [strong]. *)

val reset : t -> unit
(** Return to the initial state and step count 0. *)
