(** Two-level minimization of transition guards.

    An AR-automaton edge is labelled by the set of proposition assignments
    (minterms over [n] propositions) that take the source state to one
    successor. For the IL representation these sets are compressed into
    cubes, where each position is [Zero], [One], or [Dash] (don't care). *)

type literal = Zero | One | Dash

type t = literal array
(** One cube over [n] proposition positions. *)

val of_minterm : width:int -> int -> t
(** [of_minterm ~width mask] converts the assignment bitmask (bit [i] is the
    value of proposition [i]) into a fully specified cube. *)

val matches : t -> int -> bool
(** Does an assignment bitmask satisfy the cube? *)

val minterms : t -> int list
(** All assignment masks covered by the cube. *)

val minimize : width:int -> int list -> t list
(** [minimize ~width masks] returns cubes covering exactly the given set of
    minterms (iterated adjacent-pair merging, Quine–McCluskey style prime
    generation with greedy cover). The result covers each input mask and no
    other. *)

val to_string : t -> string
(** E.g. ["1-0"]: proposition 0 true, proposition 1 don't care, 2 false.
    Position 0 is leftmost. *)

val of_string : string -> t
(** Inverse of {!to_string}. @raise Invalid_argument on other characters. *)
