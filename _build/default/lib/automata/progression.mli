(** Formula progression: the on-the-fly AR-automaton.

    [step f v] rewrites formula [f] into the obligation that the remainder
    of the trace must satisfy, given that the current state assigns
    proposition values per valuation [v]. Progressing to [Formula.tru]
    corresponds to entering an Accept state of the AR-automaton, to
    [Formula.fls] a Reject state, anything else is Pending. Bounded
    operators count down: [F[b] f] becomes [F[b-1] f] when [f] does not
    hold now, and rejects at bound zero. *)

val step : Formula.t -> (string -> bool) -> Formula.t

val verdict : Formula.t -> Verdict.t
(** [True] iff the formula is the constant true, [False] iff constant false,
    [Pending] otherwise. *)

(** Verdict at end-of-trace. With [~strong:true], outstanding eventualities
    ([X], [F], [U], and propositions about unseen states) are counted as
    violated, while [G]/[R] obligations are discharged — standard strong
    LTL-on-finite-trace semantics. With [~strong:false] (default) a pending
    formula simply stays [Pending], matching the paper's AR-automata. *)
val finalize : ?strong:bool -> Formula.t -> Verdict.t
