module F = Formula

(* Progression is homomorphic in the boolean connectives and unfolds the
   temporal operators by one step; smart constructors collapse True/False
   eagerly, so the result is the canonical successor obligation. *)
let rec step f valuation =
  match f.F.node with
  | F.True -> F.tru
  | F.False -> F.fls
  | F.Prop name -> if valuation name then F.tru else F.fls
  | F.Not g -> F.not_ (step g valuation)
  | F.And (a, b) -> F.and_ (step a valuation) (step b valuation)
  | F.Or (a, b) -> F.or_ (step a valuation) (step b valuation)
  | F.Next g -> g
  | F.Finally (bound, g) ->
    let now = step g valuation in
    let later =
      match bound with
      | None -> F.finally None g
      | Some 0 -> F.fls
      | Some b -> F.finally (Some (b - 1)) g
    in
    F.or_ now later
  | F.Globally (bound, g) ->
    let now = step g valuation in
    let later =
      match bound with
      | None -> F.globally None g
      | Some 0 -> F.tru
      | Some b -> F.globally (Some (b - 1)) g
    in
    F.and_ now later
  | F.Until (bound, l, r) ->
    let right_now = step r valuation in
    let left_now = step l valuation in
    let later =
      match bound with
      | None -> F.until None l r
      | Some 0 -> F.fls
      | Some b -> F.until (Some (b - 1)) l r
    in
    F.or_ right_now (F.and_ left_now later)
  | F.Release (bound, l, r) ->
    let right_now = step r valuation in
    let left_now = step l valuation in
    let later =
      match bound with
      | None -> F.release None l r
      | Some 0 -> F.tru
      | Some b -> F.release (Some (b - 1)) l r
    in
    F.and_ right_now (F.or_ left_now later)

let verdict f =
  if F.equal f F.tru then Verdict.True
  else if F.equal f F.fls then Verdict.False
  else Verdict.Pending

(* End-of-trace evaluation: the residual obligation is interpreted over the
   empty suffix (LTL over possibly-empty words): propositions, X, F and U
   are false there, G and R are vacuously true, and negation flips. *)
let rec eval_empty_suffix f =
  match f.F.node with
  | F.True -> true
  | F.False -> false
  | F.Prop _ -> false
  | F.Not g -> not (eval_empty_suffix g)
  | F.And (a, b) -> eval_empty_suffix a && eval_empty_suffix b
  | F.Or (a, b) -> eval_empty_suffix a || eval_empty_suffix b
  | F.Next _ -> false
  | F.Finally _ -> false
  | F.Globally _ -> true
  | F.Until _ -> false
  | F.Release _ -> true

let finalize ?(strong = false) f =
  match verdict f with
  | (Verdict.True | Verdict.False) as final -> final
  | Verdict.Pending ->
    if not strong then Verdict.Pending
    else if eval_empty_suffix f then Verdict.True
    else Verdict.False
