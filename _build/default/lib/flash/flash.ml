type config = {
  num_blocks : int;
  words_per_block : int;
  erase_ticks : int;
  write_ticks : int;
  write_fail_prob : float;
  erase_fail_prob : float;
}

let default_config =
  {
    num_blocks = 4;
    words_per_block = 128;
    erase_ticks = 50;
    write_ticks = 5;
    write_fail_prob = 0.0;
    erase_fail_prob = 0.0;
  }

type status = Ready | Busy | Fault

type pending =
  | No_op
  | Write_op of { addr : int; value : int; will_fail : bool }
  | Erase_op of { block : int; will_fail : bool }

type t = {
  cfg : config;
  cells : int array; (* -1 = erased *)
  bad_blocks : bool array;
  prng : Stimuli.Prng.t;
  mutable state : status;
  mutable pending : pending;
  mutable remaining : int;
  mutable writes_done : int;
  mutable erases_done : int;
  mutable faults : int;
}

let create ?prng cfg =
  if cfg.num_blocks <= 0 || cfg.words_per_block <= 0 then
    invalid_arg "Flash.create: empty geometry";
  let prng =
    match prng with Some p -> p | None -> Stimuli.Prng.create ~seed:0
  in
  {
    cfg;
    cells = Array.make (cfg.num_blocks * cfg.words_per_block) (-1);
    bad_blocks = Array.make cfg.num_blocks false;
    prng;
    state = Ready;
    pending = No_op;
    remaining = 0;
    writes_done = 0;
    erases_done = 0;
    faults = 0;
  }

let config flash = flash.cfg
let size_words flash = Array.length flash.cells
let status flash = flash.state

let clear_fault flash = if flash.state = Fault then flash.state <- Ready

let check_addr flash addr =
  if addr < 0 || addr >= Array.length flash.cells then
    invalid_arg (Printf.sprintf "Flash: address %d out of range" addr)

let block_of flash addr = addr / flash.cfg.words_per_block

let read_word flash addr =
  check_addr flash addr;
  flash.cells.(addr)

let start_write flash ~addr ~value =
  if flash.state <> Ready then Error `Busy
  else if addr < 0 || addr >= Array.length flash.cells then Error `Bad_address
  else if flash.cells.(addr) <> -1 then Error `Not_erased
  else begin
    let will_fail =
      flash.bad_blocks.(block_of flash addr)
      || Stimuli.Prng.chance flash.prng flash.cfg.write_fail_prob
    in
    flash.state <- Busy;
    flash.pending <- Write_op { addr; value = Minic.Value.wrap value; will_fail };
    flash.remaining <- max 1 flash.cfg.write_ticks;
    Ok ()
  end

let start_erase flash ~block =
  if flash.state <> Ready then Error `Busy
  else if block < 0 || block >= flash.cfg.num_blocks then Error `Bad_address
  else begin
    let will_fail =
      flash.bad_blocks.(block)
      || Stimuli.Prng.chance flash.prng flash.cfg.erase_fail_prob
    in
    flash.state <- Busy;
    flash.pending <- Erase_op { block; will_fail };
    flash.remaining <- max 1 flash.cfg.erase_ticks;
    Ok ()
  end

let is_blank flash ~block =
  if block < 0 || block >= flash.cfg.num_blocks then
    invalid_arg "Flash.is_blank: bad block";
  let base = block * flash.cfg.words_per_block in
  let rec scan i =
    i >= flash.cfg.words_per_block || (flash.cells.(base + i) = -1 && scan (i + 1))
  in
  scan 0

let mark_bad_block flash block =
  if block < 0 || block >= flash.cfg.num_blocks then
    invalid_arg "Flash.mark_bad_block: bad block";
  flash.bad_blocks.(block) <- true

let complete flash =
  match flash.pending with
  | No_op -> ()
  | Write_op { addr; value; will_fail } ->
    flash.pending <- No_op;
    if will_fail then begin
      (* a failed program leaves the cell in an undefined, non-erased
         state: model as a corrupted value *)
      flash.cells.(addr) <- value lxor 0x5A5A;
      flash.faults <- flash.faults + 1;
      flash.state <- Fault
    end
    else begin
      flash.cells.(addr) <- value;
      flash.writes_done <- flash.writes_done + 1;
      flash.state <- Ready
    end
  | Erase_op { block; will_fail } ->
    flash.pending <- No_op;
    if will_fail then begin
      flash.faults <- flash.faults + 1;
      flash.state <- Fault
    end
    else begin
      let base = block * flash.cfg.words_per_block in
      Array.fill flash.cells base flash.cfg.words_per_block (-1);
      flash.erases_done <- flash.erases_done + 1;
      flash.state <- Ready
    end

let tick flash =
  if flash.state = Busy then begin
    flash.remaining <- flash.remaining - 1;
    if flash.remaining <= 0 then complete flash
  end

let ticks_remaining flash = if flash.state = Busy then flash.remaining else 0
let writes_completed flash = flash.writes_done
let erases_completed flash = flash.erases_done
let faults_injected flash = flash.faults

let reset flash =
  Array.fill flash.cells 0 (Array.length flash.cells) (-1);
  flash.state <- Ready;
  flash.pending <- No_op;
  flash.remaining <- 0;
  flash.writes_done <- 0;
  flash.erases_done <- 0;
  flash.faults <- 0
