lib/flash/flash.mli: Stimuli
