lib/flash/flash_ctrl.mli: Cpu Flash
