lib/flash/flash_ctrl.ml: Cpu Flash
