lib/flash/flash.ml: Array Minic Printf Stimuli
