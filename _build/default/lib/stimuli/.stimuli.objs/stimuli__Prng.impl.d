lib/stimuli/prng.ml: Char Int64 List Printf String
