lib/stimuli/prng.mli:
