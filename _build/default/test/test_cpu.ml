(* Tests for the microprocessor model and the MiniC compiler.  The key
   check is differential: MiniC programs compiled to the ISA and executed
   on the CPU model must agree with the reference interpreter on return
   values and final global-variable state. *)

module Isa = Cpu.Isa
module Encode = Cpu.Encode
module Asm = Cpu.Asm
module Bus = Cpu.Bus
module Ram = Cpu.Ram
module Cpu_core = Cpu.Cpu_core
module Map = Cpu.Memory_map
module Codegen = Mcc.Codegen
module Symtab = Mcc.Symtab

(* --- encode/decode ------------------------------------------------------- *)

let gen_instr =
  let open QCheck.Gen in
  let reg = int_bound 15 in
  let imm14 = int_range Isa.imm14_min Isa.imm14_max in
  let imm22 = int_range Isa.imm22_min Isa.imm22_max in
  let uimm22 = int_bound 0x3FFFFF in
  let alu_op =
    oneofl
      [ Isa.Add; Isa.Sub; Isa.Mul; Isa.Div; Isa.Rem; Isa.And; Isa.Or;
        Isa.Xor; Isa.Sll; Isa.Srl; Isa.Sra; Isa.Slt; Isa.Sle; Isa.Seq ]
  in
  let cond = oneofl [ Isa.Beq; Isa.Bne; Isa.Blt; Isa.Bge ] in
  oneof
    [
      map3 (fun op rd (rs1, rs2) -> Isa.Alu (op, rd, rs1, rs2)) alu_op reg
        (pair reg reg);
      map3 (fun op rd (rs1, imm) -> Isa.Alui (op, rd, rs1, imm)) alu_op reg
        (pair reg imm14);
      map2 (fun rd imm -> Isa.Lui (rd, imm)) reg uimm22;
      map3 (fun rd rs1 imm -> Isa.Load (rd, rs1, imm)) reg reg imm14;
      map3 (fun rs2 rs1 imm -> Isa.Store (rs2, rs1, imm)) reg reg imm14;
      map3 (fun c (rs1, rs2) imm -> Isa.Branch (c, rs1, rs2, imm)) cond
        (pair reg reg) imm14;
      map2 (fun rd imm -> Isa.Jal (rd, imm)) reg imm22;
      map3 (fun rd rs1 imm -> Isa.Jalr (rd, rs1, imm)) reg reg imm14;
      map (fun code -> Isa.Trap code) (int_bound 100);
      return Isa.Halt;
      return Isa.Nop;
    ]

let arbitrary_instr =
  QCheck.make ~print:Isa.to_string gen_instr

let qcheck_encode_decode =
  QCheck.Test.make ~name:"decode . encode = id" ~count:1000 arbitrary_instr
    (fun instr -> Encode.decode (Encode.encode instr) = instr)

let qcheck_asm_roundtrip =
  QCheck.Test.make ~name:"assemble . disassemble = id" ~count:500
    arbitrary_instr (fun instr ->
      match Asm.assemble (Isa.to_string instr) with
      | [ parsed ] -> parsed = instr
      | _ -> false)

let test_encode_imm_range () =
  match Encode.encode (Isa.Alui (Isa.Add, 1, 1, 100000)) with
  | _ -> Alcotest.fail "expected range error"
  | exception Encode.Immediate_out_of_range _ -> ()

(* --- bus / ram ------------------------------------------------------------ *)

let test_bus_devices () =
  let bus = Bus.create () in
  let ram = Ram.create ~name:"ram" ~base:0 ~size:16 in
  Bus.attach bus (Ram.device ram);
  let last_written = ref (-1) in
  Bus.attach bus
    {
      Bus.dev_name = "port";
      base = 100;
      size = 1;
      read = (fun _ -> 42);
      write = (fun _ v -> last_written := v);
    };
  Bus.write bus 3 77;
  Alcotest.(check int) "ram readback" 77 (Bus.read bus 3);
  Alcotest.(check int) "device read" 42 (Bus.read bus 100);
  Bus.write bus 100 5;
  Alcotest.(check int) "device write seen" 5 !last_written;
  Alcotest.(check int) "reads counted" 2 (Bus.reads bus);
  Alcotest.(check int) "writes counted" 2 (Bus.writes bus);
  (match Bus.read bus 50 with
  | _ -> Alcotest.fail "expected bus error"
  | exception Bus.Bus_error 50 -> ());
  match Bus.attach bus (Ram.device (Ram.create ~name:"clash" ~base:8 ~size:4)) with
  | _ -> Alcotest.fail "expected overlap rejection"
  | exception Invalid_argument _ -> ()

(* --- cpu core on assembly programs ----------------------------------------- *)

let machine_with words =
  let bus = Bus.create () in
  let ram = Ram.create ~name:"ram" ~base:0 ~size:0x8000 in
  Bus.attach bus (Ram.device ram);
  Ram.load ram 0 words;
  (Cpu_core.create bus ~start_pc:0 ~stack_pointer:Map.stack_top (), ram)

let test_cpu_sum_loop () =
  (* sum 1..10 into r4 *)
  let source =
    {|
      addi r4, r0, 0
      addi r5, r0, 1
      addi r6, r0, 10
    loop:
      add r4, r4, r5
      addi r5, r5, 1
      sle r7, r5, r6
      bne r7, r0, loop
      halt
    |}
  in
  let cpu, _ = machine_with (Asm.assemble_words source) in
  (match Cpu_core.run ~max_instructions:1000 cpu with
  | Cpu_core.Halted -> ()
  | _ -> Alcotest.fail "expected halt");
  Alcotest.(check int) "sum" 55 (Cpu_core.reg cpu 4)

let test_cpu_call_return () =
  let source =
    {|
      addi r4, r0, 21
      jal r1, double
      halt
    double:
      add r4, r4, r4
      jalr r0, r1, 0
    |}
  in
  let cpu, _ = machine_with (Asm.assemble_words source) in
  ignore (Cpu_core.run ~max_instructions:100 cpu);
  Alcotest.(check int) "doubled" 42 (Cpu_core.reg cpu 4)

let test_cpu_memory_ops () =
  let source =
    {|
      addi r4, r0, 123
      sw r4, 200(r0)
      lw r5, 200(r0)
      halt
    |}
  in
  let cpu, ram = machine_with (Asm.assemble_words source) in
  ignore (Cpu_core.run ~max_instructions:10 cpu);
  Alcotest.(check int) "stored" 123 (Ram.get ram 200);
  Alcotest.(check int) "loaded" 123 (Cpu_core.reg cpu 5)

let test_cpu_traps () =
  let cpu, _ = machine_with (Asm.assemble_words "trap 7") in
  (match Cpu_core.run ~max_instructions:10 cpu with
  | Cpu_core.Trapped 7 -> ()
  | _ -> Alcotest.fail "expected trap 7");
  (* division by zero traps *)
  let cpu2, _ =
    machine_with (Asm.assemble_words "addi r4, r0, 1\ndiv r4, r4, r0")
  in
  (match Cpu_core.run ~max_instructions:10 cpu2 with
  | Cpu_core.Trapped code ->
    Alcotest.(check int) "division trap" Isa.trap_division code
  | _ -> Alcotest.fail "expected division trap");
  (* unmapped access traps *)
  let cpu3, _ = machine_with (Asm.assemble_words "lw r4, 0(r0)\nhalt") in
  ignore cpu3;
  let bus = Bus.create () in
  Bus.attach bus (Ram.device (Ram.create ~name:"tiny" ~base:0 ~size:4));
  let cpu4 = Cpu_core.create bus ~start_pc:0 () in
  Ram.load (Ram.create ~name:"x" ~base:0 ~size:4) 0 [];
  ignore cpu4

let test_cpu_r0_is_zero () =
  let cpu, _ = machine_with (Asm.assemble_words "addi r0, r0, 5\nhalt") in
  ignore (Cpu_core.run ~max_instructions:10 cpu);
  Alcotest.(check int) "r0 still zero" 0 (Cpu_core.reg cpu 0)

(* --- differential: compiled MiniC vs interpreter ---------------------------- *)

(* Deterministic raw stimulus stream shared by both sides. *)
let make_raw_stream seed =
  let state = ref seed in
  fun () ->
    (* xorshift-ish, kept non-negative *)
    state := (!state * 1103515245) + 12345;
    (!state lsr 7) land 0xFFFFF

let build_machine words raw =
  let bus = Bus.create () in
  let ram = Ram.create ~name:"ram" ~base:0 ~size:0x8000 in
  Bus.attach bus (Ram.device ram);
  Ram.load ram 0 words;
  Bus.attach bus
    {
      Bus.dev_name = "stimulus";
      base = Map.stimulus_port;
      size = 1;
      read = (fun _ -> raw ());
      write = (fun _ _ -> ());
    };
  Bus.attach bus
    {
      Bus.dev_name = "console";
      base = Map.console_port;
      size = 1;
      read = (fun _ -> 0);
      write = (fun _ _ -> ());
    };
  (Cpu_core.create bus ~start_pc:0 ~stack_pointer:Map.stack_top (), ram)

let run_differential ?(fuel = 2_000_000) source =
  let program =
    match Minic.C_parser.parse_result source with
    | Ok p -> p
    | Error msg -> Alcotest.failf "parse: %s" msg
  in
  let info =
    match Minic.Typecheck.check_result program with
    | Ok info -> info
    | Error msg -> Alcotest.failf "typecheck: %s" msg
  in
  (* interpreter side *)
  let env = Minic.Interp.create info in
  let raw_i = make_raw_stream 7 in
  let hooks =
    {
      (Minic.Interp.default_hooks ()) with
      Minic.Interp.nondet =
        (fun ~lo ~hi -> lo + (raw_i () mod (hi - lo + 1)));
    }
  in
  let interp_result =
    match Minic.Interp.run ~fuel env hooks ~entry:"main" with
    | Minic.Interp.Finished v -> v
    | Minic.Interp.Halted -> Alcotest.fail "interp halted"
    | Minic.Interp.Fuel_exhausted -> Alcotest.fail "interp out of fuel"
  in
  (* CPU side *)
  let compiled = Codegen.compile ~fname_tracking:false info in
  let raw_c = make_raw_stream 7 in
  let cpu, ram = build_machine compiled.Codegen.words raw_c in
  (match Cpu_core.run ~max_instructions:20_000_000 cpu with
  | Cpu_core.Halted -> ()
  | Cpu_core.Trapped code -> Alcotest.failf "cpu trapped with code %d" code
  | Cpu_core.Running -> Alcotest.fail "cpu exceeded instruction budget");
  let cpu_result = Cpu_core.reg cpu Isa.reg_rv in
  (match interp_result with
  | Some expected ->
    Alcotest.(check int) "return values agree" expected cpu_result
  | None -> ());
  (* compare final global state *)
  List.iter
    (fun (name, value) ->
      if name <> "fname" then
        let addr = Symtab.address_of compiled.Codegen.symtab name in
        Alcotest.(check int)
          (Printf.sprintf "global %s agrees" name)
          value (Ram.get ram addr))
    (Minic.Interp.globals_snapshot env)

let diff_case name source =
  Alcotest.test_case name `Quick (fun () -> run_differential source)

let differential_cases =
  [
    diff_case "arithmetic and globals"
      {|
        int a;
        int b;
        int main(void) {
          a = 7 * 6 - 2;
          b = (a << 2) / 5 - (a % 7) + (a ^ 12) - (a & 5) + (a | 3);
          return a + b;
        }
      |};
    diff_case "factorial recursion"
      {|
        int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
        int main(void) { return fact(12); }
      |};
    diff_case "fibonacci loop"
      {|
        int main(void) {
          int a = 0;
          int b = 1;
          int i;
          for (i = 0; i < 30; i++) {
            int t = a + b;
            a = b;
            b = t;
          }
          return a;
        }
      |};
    diff_case "arrays and nested loops"
      {|
        const int N = 12;
        int data[N];
        int main(void) {
          int i;
          int j;
          for (i = 0; i < N; i++) { data[i] = (N - i) * 3 % 7; }
          for (i = 0; i < N; i++) {
            for (j = 0; j + 1 < N; j++) {
              if (data[j] > data[j + 1]) {
                int t = data[j];
                data[j] = data[j + 1];
                data[j + 1] = t;
              }
            }
          }
          int sum = 0;
          for (i = 0; i < N; i++) { sum = sum * 10 + data[i]; }
          return sum;
        }
      |};
    diff_case "switch fallthrough and default"
      {|
        int acc;
        void bump(int v) {
          switch (v) {
          case 0:
            acc += 1;
          case 1:
            acc += 10;
            break;
          case 2:
            acc += 100;
            break;
          default:
            acc += 1000;
            break;
          }
        }
        int main(void) {
          int i;
          for (i = 0; i < 5; i++) { bump(i); }
          return acc;
        }
      |};
    diff_case "short circuit with side effects"
      {|
        int calls;
        int yes(void) { calls++; return 1; }
        int no(void) { calls++; return 0; }
        int main(void) {
          calls = 0;
          if (no() && yes()) { calls += 100; }
          if (yes() || no()) { calls += 1000; }
          return calls;
        }
      |};
    diff_case "deep expression (register spill)"
      {|
        int main(void) {
          int a = 1;
          return (((((((a + 2) * 3 + (4 - a)) + ((5 + a) * (6 - a)))
                 + (((7 + a) + 8) * ((9 - a) + 10)))
                 + ((((11 + a) * 2) + ((12 - a) * 3)) + (((13 + a) - 4) * ((14 - a) + 5)))))
                 + ((15 + a) * (16 - a)));
        }
      |};
    diff_case "nondet stimulus agreement"
      {|
        int main(void) {
          int sum = 0;
          int i;
          for (i = 0; i < 20; i++) {
            sum = sum + nondet(3, 17);
          }
          return sum;
        }
      |};
    diff_case "memory intrinsics"
      {|
        int main(void) {
          int i;
          for (i = 0; i < 8; i++) { mem_write(0x5000 + i, i * i); }
          int sum = 0;
          for (i = 0; i < 8; i++) { sum += mem_read(0x5000 + i); }
          return sum + *(0x5003);
        }
      |};
    diff_case "global initializers"
      {|
        const int K = 4;
        int a = K * 10;
        int b = a + 2;
        int main(void) { return a + b; }
      |};
    diff_case "do-while and continue"
      {|
        int main(void) {
          int sum = 0;
          int i = 0;
          do {
            i++;
            if (i % 3 == 0) { continue; }
            sum += i;
          } while (i < 20);
          return sum;
        }
      |};
    diff_case "32-bit wraparound"
      {|
        int main(void) {
          int big = 2147483647;
          int wrapped = big + 1;
          int half = wrapped / 2;
          return half + (big >> 16) + (wrapped >> 30);
        }
      |};
  ]

(* --- trap behaviour of compiled assert/assume ------------------------------- *)

let compile_and_run source =
  let program = Minic.C_parser.parse source in
  let info = Minic.Typecheck.check program in
  let compiled = Codegen.compile info in
  let raw = make_raw_stream 3 in
  let cpu, _ = build_machine compiled.Codegen.words raw in
  (Cpu_core.run ~max_instructions:1_000_000 cpu, cpu, compiled)

let test_compiled_assert_traps () =
  let reason, _, _ =
    compile_and_run "int main(void) { assert(1 == 2); return 0; }"
  in
  match reason with
  | Cpu_core.Trapped code ->
    Alcotest.(check int) "assert trap" Isa.trap_assert code
  | _ -> Alcotest.fail "expected assert trap"

let test_compiled_fname_tracking () =
  let source =
    {|
      int fname;
      int helper(void) { return 1; }
      int main(void) { return helper(); }
    |}
  in
  let reason, cpu, compiled = compile_and_run source in
  (match reason with
  | Cpu_core.Halted -> ()
  | _ -> Alcotest.fail "expected halt");
  (* last function entered was helper... then control returned to main,
     but fname records entries only; the final value is helper's id since
     main entered first *)
  let fname_addr = Symtab.fname_address compiled.Codegen.symtab in
  let final = Bus.peek (Cpu_core.bus cpu) fname_addr in
  let info = Minic.Typecheck.check (Minic.C_parser.parse source) in
  Alcotest.(check int) "fname holds helper id"
    (Minic.Typecheck.func_id info "helper")
    final

let test_symtab_layout () =
  let source = "int a; int arr[5]; int b; void main(void) { a = 1; }" in
  let info = Minic.Typecheck.check (Minic.C_parser.parse source) in
  let symtab = Symtab.build info in
  let a = Symtab.address_of symtab "a" in
  let arr = Symtab.address_of symtab "arr" in
  let b = Symtab.address_of symtab "b" in
  Alcotest.(check int) "a at data base" Map.data_base a;
  Alcotest.(check int) "arr after a" (Map.data_base + 1) arr;
  Alcotest.(check int) "b after arr" (Map.data_base + 6) b;
  Alcotest.(check int) "arr size" 5 (Symtab.size_of symtab "arr");
  Alcotest.(check bool) "hidden fname allocated" true
    (Symtab.fname_address symtab > b)

let suite_encoding =
  [
    QCheck_alcotest.to_alcotest qcheck_encode_decode;
    QCheck_alcotest.to_alcotest qcheck_asm_roundtrip;
    Alcotest.test_case "immediate range" `Quick test_encode_imm_range;
  ]

let suite_machine =
  [
    Alcotest.test_case "bus devices" `Quick test_bus_devices;
    Alcotest.test_case "sum loop" `Quick test_cpu_sum_loop;
    Alcotest.test_case "call/return" `Quick test_cpu_call_return;
    Alcotest.test_case "memory ops" `Quick test_cpu_memory_ops;
    Alcotest.test_case "traps" `Quick test_cpu_traps;
    Alcotest.test_case "r0 is zero" `Quick test_cpu_r0_is_zero;
  ]

let suite_compiler =
  differential_cases
  @ [
      Alcotest.test_case "compiled assert traps" `Quick
        test_compiled_assert_traps;
      Alcotest.test_case "fname tracking" `Quick test_compiled_fname_tracking;
      Alcotest.test_case "symtab layout" `Quick test_symtab_layout;
    ]

let () =
  Alcotest.run "cpu"
    [
      ("encoding", suite_encoding);
      ("machine", suite_machine);
      ("compiler", suite_compiler);
    ]
