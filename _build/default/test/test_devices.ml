(* Tests for the stimulus PRNG, the data-flash model and controller, and
   the testbench mailbox. *)

module Prng = Stimuli.Prng
module Flash = Dataflash.Flash
module Flash_ctrl = Dataflash.Flash_ctrl
module Mailbox = Platform.Mailbox
module Bus = Cpu.Bus

(* --- prng ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:123 in
  let b = Prng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_matters () =
  let a = Prng.create ~seed:1 in
  let b = Prng.create ~seed:2 in
  Alcotest.(check bool) "different streams" true
    (Prng.next_int64 a <> Prng.next_int64 b)

let test_prng_split_independent () =
  let base = Prng.create ~seed:9 in
  let s1 = Prng.split base "flash" in
  let s2 = Prng.split base "stimulus" in
  Alcotest.(check bool) "named substreams differ" true
    (Prng.next_int64 s1 <> Prng.next_int64 s2);
  (* splitting again with the same name from the same state reproduces *)
  let s1' = Prng.split base "flash" in
  ignore (Prng.next_int64 s1');
  let s1'' = Prng.split base "flash" in
  Alcotest.(check int64) "reproducible" (Prng.next_int64 s1'')
    (let fresh = Prng.split base "flash" in
     Prng.next_int64 fresh)

let qcheck_prng_range =
  QCheck.Test.make ~name:"int_range stays in range" ~count:500
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let g = Prng.create ~seed:(a + (b * 1000)) in
      let v = Prng.int_range g ~lo ~hi in
      v >= lo && v <= hi)

let test_prng_pick_weighted () =
  let g = Prng.create ~seed:5 in
  let counts = Hashtbl.create 4 in
  for _ = 1 to 1000 do
    let v = Prng.pick_weighted g [ (1, "rare"); (99, "common") ] in
    Hashtbl.replace counts v
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let common = Option.value ~default:0 (Hashtbl.find_opt counts "common") in
  Alcotest.(check bool) "weighting respected" true (common > 900);
  Alcotest.check_raises "zero weights"
    (Invalid_argument "Prng.pick_weighted: no positive weight") (fun () ->
      ignore (Prng.pick_weighted g [ (0, "x") ]))

let test_prng_chance_extremes () =
  let g = Prng.create ~seed:1 in
  Alcotest.(check bool) "p=0 never" false (Prng.chance g 0.0);
  Alcotest.(check bool) "p=1 always" true (Prng.chance g 1.0)

(* --- flash model ------------------------------------------------------------ *)

let small_config =
  {
    Flash.num_blocks = 2;
    words_per_block = 8;
    erase_ticks = 3;
    write_ticks = 2;
    write_fail_prob = 0.0;
    erase_fail_prob = 0.0;
  }

let tick_n flash n = for _ = 1 to n do Flash.tick flash done

let test_flash_erased_initially () =
  let flash = Flash.create small_config in
  Alcotest.(check int) "reads -1" (-1) (Flash.read_word flash 0);
  Alcotest.(check bool) "blank" true (Flash.is_blank flash ~block:0);
  Alcotest.(check bool) "ready" true (Flash.status flash = Flash.Ready)

let test_flash_write_lifecycle () =
  let flash = Flash.create small_config in
  (match Flash.start_write flash ~addr:3 ~value:77 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "write should start");
  Alcotest.(check bool) "busy during op" true (Flash.status flash = Flash.Busy);
  (* rejected while busy *)
  (match Flash.start_write flash ~addr:4 ~value:1 with
  | Error `Busy -> ()
  | _ -> Alcotest.fail "expected busy rejection");
  tick_n flash 2;
  Alcotest.(check bool) "ready after latency" true
    (Flash.status flash = Flash.Ready);
  Alcotest.(check int) "value stored" 77 (Flash.read_word flash 3);
  Alcotest.(check bool) "no longer blank" false (Flash.is_blank flash ~block:0);
  (* programming a programmed cell is rejected *)
  match Flash.start_write flash ~addr:3 ~value:1 with
  | Error `Not_erased -> ()
  | _ -> Alcotest.fail "expected not-erased rejection"

let test_flash_erase () =
  let flash = Flash.create small_config in
  (match Flash.start_write flash ~addr:1 ~value:5 with Ok () -> () | _ -> assert false);
  tick_n flash 2;
  (match Flash.start_erase flash ~block:0 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "erase should start");
  Alcotest.(check int) "latency" 3 (Flash.ticks_remaining flash);
  tick_n flash 3;
  Alcotest.(check int) "erased" (-1) (Flash.read_word flash 1);
  Alcotest.(check bool) "blank again" true (Flash.is_blank flash ~block:0);
  Alcotest.(check int) "stats" 1 (Flash.erases_completed flash)

let test_flash_fault_injection () =
  let config = { small_config with write_fail_prob = 1.0 } in
  let flash = Flash.create config in
  (match Flash.start_write flash ~addr:0 ~value:42 with Ok () -> () | _ -> assert false);
  tick_n flash 2;
  Alcotest.(check bool) "fault state" true (Flash.status flash = Flash.Fault);
  Alcotest.(check int) "fault counted" 1 (Flash.faults_injected flash);
  Alcotest.(check bool) "cell corrupted, not erased" true
    (Flash.read_word flash 0 <> -1 && Flash.read_word flash 0 <> 42);
  Flash.clear_fault flash;
  Alcotest.(check bool) "cleared" true (Flash.status flash = Flash.Ready)

let test_flash_bad_block () =
  let flash = Flash.create small_config in
  Flash.mark_bad_block flash 1;
  let addr = 1 * small_config.Flash.words_per_block in
  (match Flash.start_write flash ~addr ~value:1 with Ok () -> () | _ -> assert false);
  tick_n flash 2;
  Alcotest.(check bool) "bad block faults" true (Flash.status flash = Flash.Fault)

let test_flash_reset () =
  let flash = Flash.create small_config in
  (match Flash.start_write flash ~addr:0 ~value:9 with Ok () -> () | _ -> assert false);
  tick_n flash 2;
  Flash.reset flash;
  Alcotest.(check int) "erased" (-1) (Flash.read_word flash 0);
  Alcotest.(check int) "stats cleared" 0 (Flash.writes_completed flash)

(* --- flash controller --------------------------------------------------------- *)

let ctrl_fixture () =
  let flash = Flash.create small_config in
  let ctrl = Flash_ctrl.create flash in
  let bus = Bus.create () in
  Bus.attach bus (Flash_ctrl.ctrl_device ctrl ~base:0x100);
  Bus.attach bus (Flash_ctrl.window_device ctrl ~base:0x200 ~size:16);
  (flash, bus)

let test_ctrl_program_sequence () =
  let flash, bus = ctrl_fixture () in
  Bus.write bus (0x100 + Flash_ctrl.reg_addr) 5;
  Bus.write bus (0x100 + Flash_ctrl.reg_data) 1234;
  Bus.write bus (0x100 + Flash_ctrl.reg_cmd) Flash_ctrl.cmd_program;
  Alcotest.(check int) "accepted" Flash_ctrl.result_ok
    (Bus.read bus (0x100 + Flash_ctrl.reg_result));
  Alcotest.(check int) "busy" Flash_ctrl.status_busy
    (Bus.read bus (0x100 + Flash_ctrl.reg_status));
  tick_n flash 2;
  Alcotest.(check int) "ready" Flash_ctrl.status_ready
    (Bus.read bus (0x100 + Flash_ctrl.reg_status));
  Alcotest.(check int) "data readback via ctrl" 1234
    (Bus.read bus (0x100 + Flash_ctrl.reg_data));
  Alcotest.(check int) "window read" 1234 (Bus.read bus (0x200 + 5));
  (* window is read-only *)
  Bus.write bus (0x200 + 5) 0;
  Alcotest.(check int) "window write ignored" 1234 (Bus.read bus (0x200 + 5))

let test_ctrl_blank_and_geometry () =
  let flash, bus = ctrl_fixture () in
  Bus.write bus (0x100 + Flash_ctrl.reg_addr) 0;
  Alcotest.(check int) "blank" 1 (Bus.read bus (0x100 + Flash_ctrl.reg_blank));
  Alcotest.(check int) "blocks" 2
    (Bus.read bus (0x100 + Flash_ctrl.reg_geom_blocks));
  Alcotest.(check int) "words" 8
    (Bus.read bus (0x100 + Flash_ctrl.reg_geom_words));
  ignore flash

let test_ctrl_rejections () =
  let _, bus = ctrl_fixture () in
  Bus.write bus (0x100 + Flash_ctrl.reg_addr) 999;
  Bus.write bus (0x100 + Flash_ctrl.reg_cmd) Flash_ctrl.cmd_program;
  Alcotest.(check int) "bad address" Flash_ctrl.result_bad_address
    (Bus.read bus (0x100 + Flash_ctrl.reg_result));
  Bus.write bus (0x100 + Flash_ctrl.reg_cmd) 99;
  Alcotest.(check int) "unknown cmd" Flash_ctrl.result_bad_address
    (Bus.read bus (0x100 + Flash_ctrl.reg_result))

(* --- mailbox ------------------------------------------------------------------ *)

let test_mailbox_flow () =
  let mailbox = Mailbox.create () in
  let bus = Bus.create () in
  Bus.attach bus (Mailbox.device mailbox ~base:0x300);
  Alcotest.(check bool) "no request" false (Mailbox.request_pending mailbox);
  Mailbox.post_request mailbox ~op:3 ~arg0:10 ~arg1:20;
  (* software side *)
  Alcotest.(check int) "req valid" 1 (Bus.read bus (0x300 + Mailbox.reg_req_valid));
  Alcotest.(check int) "op" 3 (Bus.read bus (0x300 + Mailbox.reg_req_op));
  Bus.write bus (0x300 + Mailbox.reg_req_valid) 0;
  Bus.write bus (0x300 + Mailbox.reg_resp_value) 30;
  Bus.write bus (0x300 + Mailbox.reg_resp_valid) 1;
  (* testbench side *)
  Alcotest.(check bool) "response ready" true (Mailbox.response_ready mailbox);
  Alcotest.(check int) "response" 30 (Mailbox.take_response mailbox);
  Alcotest.(check bool) "response consumed" false
    (Mailbox.response_ready mailbox);
  (* double post protection *)
  Mailbox.post_request mailbox ~op:1 ~arg0:0 ~arg1:0;
  match Mailbox.post_request mailbox ~op:2 ~arg0:0 ~arg1:0 with
  | () -> Alcotest.fail "expected pending rejection"
  | exception Invalid_argument _ -> ()

let suite_prng =
  [
    Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "seed matters" `Quick test_prng_seed_matters;
    Alcotest.test_case "split independence" `Quick test_prng_split_independent;
    QCheck_alcotest.to_alcotest qcheck_prng_range;
    Alcotest.test_case "weighted pick" `Quick test_prng_pick_weighted;
    Alcotest.test_case "chance extremes" `Quick test_prng_chance_extremes;
  ]

let suite_flash =
  [
    Alcotest.test_case "erased initially" `Quick test_flash_erased_initially;
    Alcotest.test_case "write lifecycle" `Quick test_flash_write_lifecycle;
    Alcotest.test_case "erase" `Quick test_flash_erase;
    Alcotest.test_case "fault injection" `Quick test_flash_fault_injection;
    Alcotest.test_case "bad block" `Quick test_flash_bad_block;
    Alcotest.test_case "reset" `Quick test_flash_reset;
  ]

let suite_ctrl =
  [
    Alcotest.test_case "program sequence" `Quick test_ctrl_program_sequence;
    Alcotest.test_case "blank and geometry" `Quick
      test_ctrl_blank_and_geometry;
    Alcotest.test_case "rejections" `Quick test_ctrl_rejections;
  ]

let suite_mailbox = [ Alcotest.test_case "flow" `Quick test_mailbox_flow ]

let () =
  Alcotest.run "devices"
    [
      ("prng", suite_prng);
      ("flash", suite_flash);
      ("flash-ctrl", suite_ctrl);
      ("mailbox", suite_mailbox);
    ]
