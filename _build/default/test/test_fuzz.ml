(* Randomized differential testing: generated MiniC programs must behave
   identically on the reference interpreter and when compiled to the ISA
   and executed on the CPU model — return value and final global state.
   This exercises the code generator (register-stack evaluation, spills,
   calls, control flow) far beyond the hand-written cases. *)

module Ast = Minic.Ast

(* ---- generator of small well-typed programs ---------------------------- *)

let globals = [ "g0"; "g1"; "g2" ]

(* expressions over the given readable variables; division and modulo get
   divisors forced non-zero ((e & 7) | 1), shifts are masked by both
   backends identically so any amount is fine *)
let gen_expr vars =
  let open QCheck.Gen in
  sized_size (int_bound 6) @@ fix (fun self n ->
      if n = 0 then
        oneof
          [
            map Ast.int_lit (int_range (-1000) 1000);
            map Ast.var (oneofl vars);
          ]
      else
        let sub = self (n / 2) in
        let bin op =
          map2 (fun a b -> Ast.expr (Ast.Binop (op, a, b))) sub sub
        in
        let nonzero e =
          Ast.expr
            (Ast.Binop
               ( Ast.Bor,
                 Ast.expr (Ast.Binop (Ast.Band, e, Ast.int_lit 7)),
                 Ast.int_lit 1 ))
        in
        oneof
          [
            map Ast.var (oneofl vars);
            bin Ast.Add;
            bin Ast.Sub;
            bin Ast.Mul;
            map2
              (fun a b -> Ast.expr (Ast.Binop (Ast.Div, a, nonzero b)))
              sub sub;
            map2
              (fun a b -> Ast.expr (Ast.Binop (Ast.Mod, a, nonzero b)))
              sub sub;
            bin Ast.Band;
            bin Ast.Bor;
            bin Ast.Bxor;
            bin Ast.Shl;
            bin Ast.Shr;
            bin Ast.Lt;
            bin Ast.Le;
            bin Ast.Eq;
            bin Ast.Ne;
            bin Ast.Land;
            bin Ast.Lor;
            map (fun a -> Ast.expr (Ast.Unop (Ast.Neg, a))) sub;
            map (fun a -> Ast.expr (Ast.Unop (Ast.Bitnot, a))) sub;
            map (fun a -> Ast.expr (Ast.Unop (Ast.Lognot, a))) sub;
          ])

(* statements: assignments, if/else, bounded for loops, helper calls *)
let gen_stmts ~with_call =
  let open QCheck.Gen in
  let loop_counter = ref 0 in
  let rec stmts vars depth n =
    if n <= 0 then return []
    else
      stmt vars depth >>= fun s ->
      stmts vars depth (n - 1) >>= fun rest -> return (s :: rest)
  and stmt vars depth =
    let assign =
      map2
        (fun target e -> Ast.stmt (Ast.Assign (Ast.Lvar target, e)))
        (oneofl globals) (gen_expr vars)
    in
    let base_choices =
      [ assign ]
      @ (if with_call then
           [
             map
               (fun e ->
                 Ast.stmt
                   (Ast.Assign
                      (Ast.Lvar "g0", Ast.expr (Ast.Call ("helper", [ e ])))))
               (gen_expr vars);
           ]
         else [])
    in
    if depth <= 0 then oneof base_choices
    else
      oneof
        (base_choices
        @ [
            (* if / else *)
            (gen_expr vars >>= fun cond ->
             stmts vars (depth - 1) 2 >>= fun then_body ->
             stmts vars (depth - 1) 2 >>= fun else_body ->
             return
               (Ast.stmt
                  (Ast.If
                     ( cond,
                       Ast.stmt (Ast.Block then_body),
                       Some (Ast.stmt (Ast.Block else_body)) ))));
            (* bounded counted loop with a fresh counter *)
            (int_range 1 5 >>= fun iterations ->
             incr loop_counter;
             let counter = Printf.sprintf "i%d" !loop_counter in
             stmts (counter :: vars) (depth - 1) 2 >>= fun body ->
             return
               (Ast.stmt
                  (Ast.For
                     ( Some
                         (Ast.stmt
                            (Ast.Decl (counter, Ast.Tint, Some (Ast.int_lit 0)))),
                       Some
                         (Ast.expr
                            (Ast.Binop
                               ( Ast.Lt,
                                 Ast.var counter,
                                 Ast.int_lit iterations ))),
                       Some
                         (Ast.stmt
                            (Ast.Assign
                               ( Ast.Lvar counter,
                                 Ast.expr
                                   (Ast.Binop
                                      ( Ast.Add,
                                        Ast.var counter,
                                        Ast.int_lit 1 )) ))),
                       Ast.stmt (Ast.Block body) ))));
          ])
  in
  fun vars depth n -> stmts vars depth n

let gen_program =
  let open QCheck.Gen in
  gen_stmts ~with_call:false [ "p" ] 1 3 >>= fun helper_body ->
  gen_expr [ "p"; "g0"; "g1" ] >>= fun helper_ret ->
  gen_stmts ~with_call:true globals 2 5 >>= fun main_body ->
  gen_expr globals >>= fun main_ret ->
  let helper =
    {
      Ast.f_name = "helper";
      f_ret = Ast.Tint;
      f_params = [ ("p", Ast.Tint) ];
      f_body = helper_body @ [ Ast.stmt (Ast.Return (Some helper_ret)) ];
      f_pos = Ast.dummy_pos;
    }
  in
  let main =
    {
      Ast.f_name = "main";
      f_ret = Ast.Tint;
      f_params = [];
      f_body = main_body @ [ Ast.stmt (Ast.Return (Some main_ret)) ];
      f_pos = Ast.dummy_pos;
    }
  in
  let program =
    {
      Ast.globals =
        List.map
          (fun name ->
            {
              Ast.g_name = name;
              g_type = Ast.Tint;
              g_const = false;
              g_init = None;
              g_pos = Ast.dummy_pos;
            })
          globals;
      funcs = [ helper; main ];
    }
  in
  return program

let arbitrary_program =
  QCheck.make ~print:Minic.Pretty.program_to_string gen_program

(* ---- the differential oracle ------------------------------------------- *)

let run_interp info =
  let env = Minic.Interp.create info in
  match
    Minic.Interp.run ~fuel:1_000_000 env
      (Minic.Interp.default_hooks ())
      ~entry:"main"
  with
  | Minic.Interp.Finished (Some v) ->
    Some (v, List.map (fun g -> Minic.Interp.read_global env g) globals)
  | _ -> None

let run_cpu info =
  let compiled = Mcc.Codegen.compile ~fname_tracking:false info in
  let bus = Cpu.Bus.create () in
  let ram = Cpu.Ram.create ~name:"ram" ~base:0 ~size:0x8000 in
  Cpu.Bus.attach bus (Cpu.Ram.device ram);
  Cpu.Ram.load ram 0 compiled.Mcc.Codegen.words;
  let core =
    Cpu.Cpu_core.create bus ~start_pc:0
      ~stack_pointer:Cpu.Memory_map.stack_top ()
  in
  match Cpu.Cpu_core.run ~max_instructions:10_000_000 core with
  | Cpu.Cpu_core.Halted ->
    Some
      ( Cpu.Cpu_core.reg core Cpu.Isa.reg_rv,
        List.map
          (fun g ->
            Cpu.Ram.get ram (Mcc.Symtab.address_of compiled.Mcc.Codegen.symtab g))
          globals )
  | _ -> None

let qcheck_compiled_equals_interpreted =
  QCheck.Test.make ~name:"compiled == interpreted (random programs)"
    ~count:300 arbitrary_program (fun program ->
      match Minic.Typecheck.check_result program with
      | Error msg -> QCheck.Test.fail_reportf "generator bug: %s" msg
      | Ok info -> (
        match run_interp info, run_cpu info with
        | Some (rv1, gs1), Some (rv2, gs2) -> rv1 = rv2 && gs1 = gs2
        | None, None -> true
        | Some _, None -> QCheck.Test.fail_report "cpu failed, interp ok"
        | None, Some _ -> QCheck.Test.fail_report "interp failed, cpu ok"))

(* the generated programs must also survive the pretty-print/parse loop *)
let qcheck_program_roundtrip =
  QCheck.Test.make ~name:"pretty . parse round trip (random programs)"
    ~count:150 arbitrary_program (fun program ->
      let printed = Minic.Pretty.program_to_string program in
      match Minic.C_parser.parse_result printed with
      | Error msg -> QCheck.Test.fail_reportf "reparse failed: %s" msg
      | Ok reparsed ->
        String.equal printed (Minic.Pretty.program_to_string reparsed))

(* and the normalization pass must preserve their behaviour *)
let qcheck_normalize_preserves =
  QCheck.Test.make ~name:"normalize preserves behaviour (random programs)"
    ~count:150 arbitrary_program (fun program ->
      match Minic.Typecheck.check_result program with
      | Error _ -> false
      | Ok info -> (
        let normalized = Absref.Normalize.program info in
        match run_interp info, run_interp normalized with
        | Some a, Some b -> a = b
        | None, None -> true
        | _ -> false))

let () =
  Alcotest.run "fuzz"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest qcheck_compiled_equals_interpreted;
          QCheck_alcotest.to_alcotest qcheck_program_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_normalize_preserves;
        ] );
    ]
