(* Integration tests for approach 1: compiled MiniC running on the SoC,
   monitored by SCTC through the memory interface with the clock as the
   timing reference and the flag handshake (paper Section 3.1). *)

module Soc = Platform.Soc
module Esw_monitor = Platform.Esw_monitor
module Mem_prop = Platform.Mem_prop
module Mailbox = Platform.Mailbox
module Checker = Sctc.Checker
module Map = Cpu.Memory_map

let check_verdict = Alcotest.check (Alcotest.testable Verdict.pp Verdict.equal)

let compile source =
  let program = Minic.C_parser.parse source in
  let info = Minic.Typecheck.check program in
  Mcc.Codegen.compile info

let soc_with source =
  let soc = Soc.create () in
  Soc.load soc (compile source);
  soc

(* the paper's software skeleton: init protocol flag, then serve forever *)
let counter_program =
  {|
    int flag;
    int counter;
    int overflow;

    void tick(void) {
      counter = counter + 1;
      if (counter > 50) {
        counter = 0;
        overflow = overflow + 1;
      }
    }

    void main(void) {
      flag = 1;
      while (true) { tick(); }
    }
  |}

let test_handshake_and_monitoring () =
  let soc = soc_with counter_program in
  let checker = Checker.create ~name:"counter-props" () in
  Mem_prop.register_all checker
    [
      Mem_prop.var_pred soc ~prop_name:"counter_in_range" "counter" (fun v ->
          v >= 0 && v <= 51);
      Mem_prop.var_pred soc ~prop_name:"overflow_seen" "overflow" (fun v ->
          v > 0);
    ];
  Checker.add_property_text checker ~name:"range" "G counter_in_range";
  Checker.add_property_text checker ~name:"progress" "F overflow_seen";
  let monitor = Esw_monitor.attach soc ~flag:"flag" checker in
  Soc.run ~max_cycles:4000 soc;
  Alcotest.(check bool) "handshake completed" true
    (Esw_monitor.initialized monitor);
  (match Esw_monitor.armed_at_cycle monitor with
  | Some cycle -> Alcotest.(check bool) "armed after boot" true (cycle > 1)
  | None -> Alcotest.fail "never armed");
  check_verdict "safety holds (pending)" Verdict.Pending
    (Checker.verdict checker "range");
  check_verdict "liveness validated" Verdict.True
    (Checker.verdict checker "progress");
  Alcotest.(check bool) "checker stepped every cycle after arming" true
    (Checker.steps checker > 3000)

let test_monitor_not_armed_before_flag () =
  (* software that never raises the flag: the monitor must stay silent *)
  let source =
    {|
      int flag;
      int counter;
      void main(void) { while (true) { counter = counter + 1; } }
    |}
  in
  let soc = soc_with source in
  let checker = Checker.create ~name:"never" () in
  Checker.register_sampler checker "always_false" (fun () -> false);
  Checker.add_property_text checker ~name:"p" "G always_false";
  let monitor = Esw_monitor.attach soc ~flag:"flag" checker in
  Soc.run ~max_cycles:500 soc;
  Alcotest.(check bool) "not initialized" false
    (Esw_monitor.initialized monitor);
  Alcotest.(check int) "checker never stepped" 0 (Checker.steps checker);
  check_verdict "no spurious violation" Verdict.Pending
    (Checker.verdict checker "p")

let test_violation_detected_with_cycle () =
  let source =
    {|
      int flag;
      int bad;
      int i;
      void main(void) {
        flag = 1;
        for (i = 0; i < 40; i++) { }
        bad = 1;
        while (true) { }
      }
    |}
  in
  let soc = soc_with source in
  let checker = Checker.create ~name:"safety" () in
  Mem_prop.register_all checker
    [ Mem_prop.var_eq soc ~prop_name:"bad_set" "bad" 1 ];
  Checker.add_property_text checker ~name:"never_bad" "G !bad_set";
  let violation = ref None in
  Checker.on_violation checker (fun name step -> violation := Some (name, step));
  ignore (Esw_monitor.attach soc ~flag:"flag" checker);
  Soc.run ~max_cycles:2000 soc;
  check_verdict "violated" Verdict.False (Checker.verdict checker "never_bad");
  match !violation with
  | Some ("never_bad", step) ->
    Alcotest.(check bool) "violation after the loop ran" true (step > 40)
  | _ -> Alcotest.fail "violation callback not invoked"

let test_fname_function_sequencing () =
  let source =
    {|
      int flag;
      int n;
      void helper(void) { n = n + 1; }
      void other(void) { n = n + 2; }
      void main(void) {
        flag = 1;
        while (true) {
          helper();
          other();
        }
      }
    |}
  in
  let soc = soc_with source in
  let checker = Checker.create ~name:"fname" () in
  Mem_prop.register_all checker
    [ Mem_prop.in_function soc "helper"; Mem_prop.in_function soc "other" ];
  (* function sequencing: whenever we are in helper, we eventually reach
     other (within a bounded number of cycles) *)
  Checker.add_property_text checker ~name:"seq"
    "G (in_helper -> F[300] in_other)";
  Checker.add_property_text checker ~name:"reaches_helper" "F in_helper";
  ignore (Esw_monitor.attach soc ~flag:"flag" checker);
  Soc.run ~max_cycles:3000 soc;
  check_verdict "helper observed" Verdict.True
    (Checker.verdict checker "reaches_helper");
  check_verdict "sequencing holds" Verdict.Pending
    (Checker.verdict checker "seq")

let test_mailbox_request_response () =
  (* software serving doubling requests through the mailbox *)
  let source =
    Printf.sprintf
      {|
        const int MB = %d;
        int flag;
        int served;
        void main(void) {
          flag = 1;
          while (true) {
            if (*(MB + 0) == 1) {
              int op = *(MB + 1);
              int a = *(MB + 2);
              *(MB + 0) = 0;
              *(MB + 5) = a * 2 + op;
              *(MB + 4) = 1;
              served = served + 1;
            }
          }
        }
      |}
      Map.mailbox_base
  in
  let soc = soc_with source in
  let mailbox = Soc.mailbox soc in
  let checker = Checker.create ~name:"resp" () in
  Checker.register_sampler checker "req" (fun () ->
      Mailbox.request_pending mailbox);
  Checker.register_sampler checker "resp" (fun () ->
      Mailbox.response_ready mailbox);
  Checker.add_property_text checker ~name:"responsive"
    "G (req -> F[500] resp)";
  ignore (Esw_monitor.attach soc ~flag:"flag" checker);
  (* testbench driving three requests *)
  let kernel = Soc.kernel soc in
  let clock = Soc.clock soc in
  let responses = ref [] in
  ignore
    (Sim.Kernel.spawn kernel ~name:"testbench" (fun () ->
         for i = 1 to 3 do
           Mailbox.post_request mailbox ~op:0 ~arg0:(i * 10) ~arg1:0;
           let rec wait_response () =
             Sim.Clock.wait_posedge clock;
             if not (Mailbox.response_ready mailbox) then wait_response ()
           in
           wait_response ();
           responses := Mailbox.take_response mailbox :: !responses
         done));
  Soc.run ~max_cycles:5000 soc;
  Alcotest.(check (list int)) "computed results" [ 20; 40; 60 ]
    (List.rev !responses);
  check_verdict "responsiveness property holds" Verdict.Pending
    (Checker.verdict checker "responsive");
  Alcotest.(check int) "software served all" 3 (Soc.read_var soc "served")

let test_software_uses_flash_controller () =
  (* DFALib-style word program + readback through the controller *)
  let source =
    Printf.sprintf
      {|
        const int FC = %d;
        int flag;
        int result;
        void main(void) {
          flag = 1;
          *(FC + 1) = 9;        /* ADDR */
          *(FC + 2) = 4242;     /* DATA */
          *(FC + 0) = 1;        /* CMD = program */
          while (*(FC + 3) != 0) { }   /* wait ready */
          *(FC + 1) = 9;
          result = *(FC + 2);   /* read back */
          while (true) { }
        }
      |}
      Map.flash_ctrl_base
  in
  let soc = soc_with source in
  Soc.run ~max_cycles:3000 soc;
  Alcotest.(check int) "flash written" 4242
    (Dataflash.Flash.read_word (Soc.flash soc) 9);
  Alcotest.(check int) "software read it back" 4242
    (Soc.read_var soc "result")

let test_nondet_stimulus_in_range () =
  let source =
    {|
      int flag;
      int out_of_range;
      void main(void) {
        flag = 1;
        while (true) {
          int v = nondet(10, 20);
          if (v < 10 || v > 20) { out_of_range = 1; }
        }
      }
    |}
  in
  let soc = soc_with source in
  let checker = Checker.create ~name:"range" () in
  Mem_prop.register_all checker
    [ Mem_prop.var_eq soc ~prop_name:"oob" "out_of_range" 1 ];
  Checker.add_property_text checker ~name:"in_range" "G !oob";
  ignore (Esw_monitor.attach soc ~flag:"flag" checker);
  Soc.run ~max_cycles:5000 soc;
  check_verdict "stimulus never out of range" Verdict.Pending
    (Checker.verdict checker "in_range")

let test_assert_trap_stops_cpu () =
  let source =
    {|
      int flag;
      void main(void) {
        flag = 1;
        assert(1 == 2);
      }
    |}
  in
  let soc = soc_with source in
  Soc.run ~max_cycles:1000 soc;
  Alcotest.(check bool) "cpu stopped" true (Soc.cpu_stopped soc);
  match Cpu.Cpu_core.stop_reason (Soc.cpu soc) with
  | Cpu.Cpu_core.Trapped code ->
    Alcotest.(check int) "assert trap" Cpu.Isa.trap_assert code
  | _ -> Alcotest.fail "expected trap"

let suite =
  [
    Alcotest.test_case "handshake and monitoring" `Quick
      test_handshake_and_monitoring;
    Alcotest.test_case "monitor waits for flag" `Quick
      test_monitor_not_armed_before_flag;
    Alcotest.test_case "violation detected" `Quick
      test_violation_detected_with_cycle;
    Alcotest.test_case "fname sequencing" `Quick
      test_fname_function_sequencing;
    Alcotest.test_case "mailbox request/response" `Quick
      test_mailbox_request_response;
    Alcotest.test_case "flash via controller" `Quick
      test_software_uses_flash_controller;
    Alcotest.test_case "nondet in range" `Quick test_nondet_stimulus_in_range;
    Alcotest.test_case "assert traps cpu" `Quick test_assert_trap_stops_cpu;
  ]

let () = Alcotest.run "platform" [ ("approach-1", suite) ]
