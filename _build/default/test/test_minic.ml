(* Tests for the MiniC front end: lexer, parser, typechecker, pretty-printer
   and the reference interpreter. *)

module Ast = Minic.Ast
module C_lexer = Minic.C_lexer
module C_parser = Minic.C_parser
module Typecheck = Minic.Typecheck
module Pretty = Minic.Pretty
module Interp = Minic.Interp
module Value = Minic.Value

let parse_ok source =
  match C_parser.parse_result source with
  | Ok program -> program
  | Error msg -> Alcotest.failf "unexpected parse error: %s" msg

let check_ok source =
  match Typecheck.check_result (parse_ok source) with
  | Ok info -> info
  | Error msg -> Alcotest.failf "unexpected type error: %s" msg

let run_main ?(fuel = 1_000_000) ?hooks source =
  let info = check_ok source in
  let env = Interp.create info in
  let hooks = match hooks with Some h -> h | None -> Interp.default_hooks () in
  let outcome = Interp.run ~fuel env hooks ~entry:"main" in
  (env, outcome)

let result_of source =
  match run_main source with
  | _, Interp.Finished v -> v
  | _, Interp.Halted -> Alcotest.fail "program halted"
  | _, Interp.Fuel_exhausted -> Alcotest.fail "fuel exhausted"

let check_returns name expected source =
  Alcotest.(check (option int)) name (Some expected) (result_of source)

(* --- value --------------------------------------------------------------- *)

let test_value_wrap () =
  Alcotest.(check int) "max wraps" (-2147483648) (Value.add 2147483647 1);
  Alcotest.(check int) "min wraps" 2147483647 (Value.sub (-2147483648) 1);
  Alcotest.(check int) "mul wraps" 0 (Value.mul 65536 65536);
  Alcotest.(check int) "neg min" (-2147483648) (Value.neg (-2147483648));
  Alcotest.(check int) "div trunc toward zero" (-2) (Value.div (-7) 3);
  Alcotest.(check int) "rem sign" (-1) (Value.rem (-7) 3);
  Alcotest.(check int) "asr sign extends" (-1) (Value.shift_right (-2) 1);
  Alcotest.(check int) "lsr fills zero" 2147483647
    (Value.shift_right_logical (-2) 1);
  Alcotest.(check int) "shift masked" (Value.shift_left 1 1)
    (Value.shift_left 1 33)

let qcheck_value_div_rem =
  QCheck.Test.make ~name:"a = b*(a/b) + a%%b" ~count:500
    QCheck.(pair int int)
    (fun (a, b) ->
      let a = Value.wrap a and b = Value.wrap b in
      QCheck.assume (b <> 0);
      (* avoid the INT_MIN / -1 overflow corner, C UB *)
      QCheck.assume (not (a = -2147483648 && b = -1));
      Value.add (Value.mul b (Value.div a b)) (Value.rem a b) = a)

let qcheck_value_wrap_idempotent =
  QCheck.Test.make ~name:"wrap is idempotent and in range" ~count:500
    QCheck.int (fun v ->
      let w = Value.wrap v in
      Value.wrap w = w && w >= -2147483648 && w <= 2147483647)

(* --- lexer ----------------------------------------------------------------- *)

let test_lexer_literals () =
  let tokens = List.map fst (C_lexer.tokenize "42 0x2A 0xff") in
  Alcotest.(check bool) "decimal and hex" true
    (tokens = [ C_lexer.INT_LIT 42; C_lexer.INT_LIT 42; C_lexer.INT_LIT 255;
                C_lexer.EOF ])

let test_lexer_operators () =
  let tokens = List.map fst (C_lexer.tokenize "a<<2>>=b!=c==d&&e||f") in
  Alcotest.(check int) "token count" 15 (List.length tokens)

let test_lexer_comments () =
  let tokens =
    List.map fst (C_lexer.tokenize "x /* multi \n line */ y // tail\n z")
  in
  Alcotest.(check bool) "comments skipped" true
    (tokens
    = [ C_lexer.IDENT "x"; C_lexer.IDENT "y"; C_lexer.IDENT "z"; C_lexer.EOF ])

let test_lexer_error () =
  match C_lexer.tokenize "a $ b" with
  | _ -> Alcotest.fail "expected lex error"
  | exception C_lexer.Lex_error (_, pos) ->
    Alcotest.(check int) "column" 3 pos.Ast.column

(* --- parser ---------------------------------------------------------------- *)

let test_parse_simple_program () =
  let program =
    parse_ok
      {|
        const int LIMIT = 10;
        int counter;
        int table[4];

        void tick(void) { counter = counter + 1; }

        int main(void) {
          for (counter = 0; counter < LIMIT; counter++) { tick(); }
          return counter;
        }
      |}
  in
  Alcotest.(check int) "globals" 3 (List.length program.Ast.globals);
  Alcotest.(check int) "funcs" 2 (List.length program.Ast.funcs)

let test_parse_const_in_array_size () =
  let program =
    parse_ok "const int N = 4; const int M = N * 2 + 1; int data[M];"
  in
  match Ast.find_global program "data" with
  | Some { Ast.g_type = Ast.Tarray 9; _ } -> ()
  | _ -> Alcotest.fail "array size should fold to 9"

let test_parse_sugar () =
  (* += and ++ desugar to plain assignments *)
  let program =
    parse_ok "int x; void main(void) { x += 3; x++; x -= 1; x--; }"
  in
  let func = Option.get (Ast.find_func program "main") in
  Alcotest.(check int) "four statements" 4 (List.length func.Ast.f_body);
  List.iter
    (fun s ->
      match s.Ast.sdesc with
      | Ast.Assign (Ast.Lvar "x", _) -> ()
      | _ -> Alcotest.fail "expected assignment")
    func.Ast.f_body

let test_parse_intrinsics () =
  let program =
    parse_ok
      {|
        void main(void) {
          int v;
          v = nondet(0, 10);
          v = mem_read(0x100);
          mem_write(0x104, v);
          v = *(0x100);
          *(0x104) = v;
          assert(v >= 0);
          assume(v < 100);
          halt();
        }
      |}
  in
  let func = Option.get (Ast.find_func program "main") in
  let kinds =
    List.map
      (fun s ->
        match s.Ast.sdesc with
        | Ast.Decl _ -> "decl"
        | Ast.Assign (Ast.Lmem _, _) -> "memwrite"
        | Ast.Assign (_, { Ast.edesc = Ast.Nondet _; _ }) -> "nondet"
        | Ast.Assign (_, { Ast.edesc = Ast.Mem_read _; _ }) -> "memread"
        | Ast.Assign _ -> "assign"
        | Ast.Assert _ -> "assert"
        | Ast.Assume _ -> "assume"
        | Ast.Halt -> "halt"
        | _ -> "other")
      func.Ast.f_body
  in
  Alcotest.(check (list string)) "statement kinds"
    [ "decl"; "nondet"; "memread"; "memwrite"; "memread"; "memwrite";
      "assert"; "assume"; "halt" ]
    kinds

let test_parse_precedence () =
  let e = C_parser.parse_expr "1 + 2 * 3 == 7 && 1 < 2 | 1" in
  (* (&&) lowest: ((1 + (2*3)) == 7) && (1 < (2|1)) *)
  match e.Ast.edesc with
  | Ast.Binop (Ast.Land, _, _) -> ()
  | _ -> Alcotest.fail "&& should be at the top"

let test_parse_dangling_else () =
  let program =
    parse_ok "int x; void main(void) { if (x) if (x) x = 1; else x = 2; }"
  in
  let func = Option.get (Ast.find_func program "main") in
  match func.Ast.f_body with
  | [ { Ast.sdesc = Ast.If (_, inner, None); _ } ] -> (
    match inner.Ast.sdesc with
    | Ast.If (_, _, Some _) -> ()
    | _ -> Alcotest.fail "else should attach to inner if")
  | _ -> Alcotest.fail "expected single outer if"

let test_parse_errors () =
  let expect_error source =
    match C_parser.parse_result source with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %S" source
  in
  expect_error "int main(void) { return 0 }";
  expect_error "void f() { 1 + ; }";
  expect_error "int a[0];";
  expect_error "int a[x];" (* non-constant size *);
  expect_error "void f(void) { x = ; }"

(* --- typechecker ------------------------------------------------------------ *)

let test_typecheck_errors () =
  let expect_error source =
    match Typecheck.check_result (parse_ok source) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected type error for %S" source
  in
  expect_error "void main(void) { x = 1; }";
  expect_error "void f(int a) {} void main(void) { f(); }";
  expect_error "void f(void) {} void main(void) { int x; x = f(); }";
  expect_error "const int C = 1; void main(void) { C = 2; }";
  expect_error "int a[3]; void main(void) { a = 1; }";
  expect_error "int x; void main(void) { x[0] = 1; }";
  expect_error "void main(void) { break; }";
  expect_error "void main(void) { continue; }";
  expect_error
    "void main(void) { switch (1) { case 1: break; case 1: break; } }";
  expect_error "int main(void) { return; }";
  expect_error "void main(void) { return 1; }";
  expect_error "int x; int x;";
  expect_error "void f(void) {} void f(void) {}";
  expect_error "int x = nondet(0, 1);"

let test_typecheck_func_ids () =
  let info = check_ok "void a(void) {} void b(void) {} void main(void) {}" in
  Alcotest.(check int) "a" 1 (Typecheck.func_id info "a");
  Alcotest.(check int) "b" 2 (Typecheck.func_id info "b");
  Alcotest.(check int) "main" 3 (Typecheck.func_id info "main");
  Alcotest.(check (option string)) "reverse" (Some "b")
    (Typecheck.func_name_of_id info 2)

(* --- pretty-printer ----------------------------------------------------------- *)

let sample_program =
  {|
    const int SIZE = 8;
    int data[SIZE];
    int total;
    bool ready = false;

    int sum(int from, int upto) {
      int acc = 0;
      int i;
      for (i = from; i < upto; i++) {
        acc += data[i];
        if (acc > 100) { break; }
      }
      return acc;
    }

    void classify(int v) {
      switch (v) {
      case 0:
      case 1:
        total = 1;
        break;
      case 2:
        total = 2;
      default:
        total = total + 1;
        break;
      }
    }

    int main(void) {
      int i = 0;
      while (i < SIZE) { data[i] = i; i++; }
      do { i--; } while (i > 0);
      classify(sum(0, SIZE));
      return total;
    }
  |}

let test_pretty_roundtrip_idempotent () =
  let program = parse_ok sample_program in
  let printed = Pretty.program_to_string program in
  let reparsed = parse_ok printed in
  let printed_again = Pretty.program_to_string reparsed in
  Alcotest.(check string) "print . parse . print idempotent" printed
    printed_again;
  (* also behaviourally identical *)
  ignore (check_ok printed)

(* --- interpreter ----------------------------------------------------------------- *)

let test_interp_factorial () =
  check_returns "10!" 3628800
    {|
      int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
      int main(void) { return fact(10); }
    |}

let test_interp_gcd_loop () =
  check_returns "gcd(252, 105)" 21
    {|
      int main(void) {
        int a = 252;
        int b = 105;
        while (b != 0) {
          int t = b;
          b = a % b;
          a = t;
        }
        return a;
      }
    |}

let test_interp_arrays_sort () =
  check_returns "bubble sort checks order" 1
    {|
      const int N = 8;
      int a[N];
      int main(void) {
        int i;
        int j;
        for (i = 0; i < N; i++) { a[i] = N - i; }
        for (i = 0; i < N; i++) {
          for (j = 0; j + 1 < N - i; j++) {
            if (a[j] > a[j + 1]) {
              int t = a[j];
              a[j] = a[j + 1];
              a[j + 1] = t;
            }
          }
        }
        for (i = 0; i + 1 < N; i++) {
          if (a[i] > a[i + 1]) { return 0; }
        }
        return 1;
      }
    |}

let test_interp_switch_fallthrough () =
  check_returns "fallthrough accumulates" 30
    {|
      int r;
      void classify(int v) {
        switch (v) {
        case 1:
          r = r + 10;
        case 2:
          r = r + 20;
          break;
        case 3:
          r = r + 400;
          break;
        default:
          r = r + 8000;
          break;
        }
      }
      int main(void) { r = 0; classify(1); return r; }
    |}

let test_interp_switch_default () =
  check_returns "default taken" 8000
    {|
      int r;
      void classify(int v) {
        switch (v) {
        case 1: r = 10; break;
        default: r = 8000; break;
        }
      }
      int main(void) { classify(99); return r; }
    |}

let test_interp_continue () =
  check_returns "sum of odds below 10" 25
    {|
      int main(void) {
        int sum = 0;
        int i;
        for (i = 0; i < 10; i++) {
          if (i % 2 == 0) { continue; }
          sum += i;
        }
        return sum;
      }
    |}

let test_interp_short_circuit () =
  check_returns "&& and || do not evaluate rhs needlessly" 1
    {|
      int calls;
      int bump(void) { calls = calls + 1; return 1; }
      int main(void) {
        calls = 0;
        if (false && bump()) {}
        if (true || bump()) {}
        return calls == 0;
      }
    |}

let test_interp_division_by_zero () =
  let info = check_ok "int main(void) { int z = 0; return 1 / z; }" in
  let env = Interp.create info in
  match Interp.run env (Interp.default_hooks ()) ~entry:"main" with
  | _ -> Alcotest.fail "expected runtime error"
  | exception Interp.Runtime_error (msg, _) ->
    Alcotest.(check bool) "mentions division" true
      (String.length msg > 0)

let test_interp_assert_failure () =
  let info = check_ok "int main(void) { assert(1 == 2); return 0; }" in
  let env = Interp.create info in
  match Interp.run env (Interp.default_hooks ()) ~entry:"main" with
  | _ -> Alcotest.fail "expected assertion failure"
  | exception Interp.Assertion_failed _ -> ()

let test_interp_halt_and_fuel () =
  let _, outcome = run_main "void main(void) { while (true) { halt(); } }" in
  (match outcome with
  | Interp.Halted -> ()
  | _ -> Alcotest.fail "expected halt");
  let _, outcome2 = run_main ~fuel:100 "void main(void) { while (true) { } }" in
  match outcome2 with
  | Interp.Fuel_exhausted -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_interp_hooks_nondet_and_memory () =
  let source =
    {|
      int main(void) {
        int v = nondet(5, 9);
        mem_write(0x20, v * 2);
        return mem_read(0x20) + v;
      }
    |}
  in
  let info = check_ok source in
  let env = Interp.create info in
  let hooks =
    { (Interp.default_hooks ()) with Interp.nondet = (fun ~lo:_ ~hi -> hi) }
  in
  match Interp.run env hooks ~entry:"main" with
  | Interp.Finished (Some v) -> Alcotest.(check int) "9*2+9" 27 v
  | _ -> Alcotest.fail "expected finish"

let test_interp_statement_hook_and_fname () =
  let source =
    {|
      int fname;
      void helper(void) { fname = fname; }
      int main(void) { helper(); helper(); return 0; }
    |}
  in
  let info = check_ok source in
  let env = Interp.create info in
  let statements = ref 0 in
  let entries = ref [] in
  let hooks =
    {
      (Interp.default_hooks ()) with
      Interp.on_statement = (fun _ -> incr statements);
      on_function_entry = (fun name -> entries := name :: !entries);
    }
  in
  ignore (Interp.run env hooks ~entry:"main");
  Alcotest.(check (list string)) "function entries"
    [ "main"; "helper"; "helper" ] (List.rev !entries);
  Alcotest.(check bool) "statements counted" true (!statements >= 5);
  Alcotest.(check int) "env count matches" !statements
    (Interp.statements_executed env)

let test_interp_global_init_order () =
  check_returns "later initializers see earlier globals" 15
    {|
      int a = 5;
      int b = a * 2;
      int main(void) { return a + b; }
    |}

let test_interp_globals_snapshot () =
  let env, _ = run_main "int x; int y; void main(void) { x = 7; y = 9; }" in
  Alcotest.(check (list (pair string int)))
    "snapshot" [ ("x", 7); ("y", 9) ] (Interp.globals_snapshot env);
  Alcotest.(check int) "read_global" 7 (Interp.read_global env "x");
  Interp.write_global env "x" 123;
  Alcotest.(check int) "write_global" 123 (Interp.read_global env "x")

let test_interp_block_scoping () =
  check_returns "inner declaration shadows" 5
    {|
      int main(void) {
        int x = 5;
        {
          int x = 99;
          x = 100;
        }
        return x;
      }
    |}

let suite_value =
  [
    Alcotest.test_case "wrap semantics" `Quick test_value_wrap;
    QCheck_alcotest.to_alcotest qcheck_value_div_rem;
    QCheck_alcotest.to_alcotest qcheck_value_wrap_idempotent;
  ]

let suite_lexer =
  [
    Alcotest.test_case "literals" `Quick test_lexer_literals;
    Alcotest.test_case "operators" `Quick test_lexer_operators;
    Alcotest.test_case "comments" `Quick test_lexer_comments;
    Alcotest.test_case "error position" `Quick test_lexer_error;
  ]

let suite_parser =
  [
    Alcotest.test_case "simple program" `Quick test_parse_simple_program;
    Alcotest.test_case "const array sizes" `Quick
      test_parse_const_in_array_size;
    Alcotest.test_case "sugar" `Quick test_parse_sugar;
    Alcotest.test_case "intrinsics" `Quick test_parse_intrinsics;
    Alcotest.test_case "precedence" `Quick test_parse_precedence;
    Alcotest.test_case "dangling else" `Quick test_parse_dangling_else;
    Alcotest.test_case "errors" `Quick test_parse_errors;
  ]

let suite_typecheck =
  [
    Alcotest.test_case "rejections" `Quick test_typecheck_errors;
    Alcotest.test_case "function ids" `Quick test_typecheck_func_ids;
  ]

let suite_pretty =
  [
    Alcotest.test_case "print/parse idempotent" `Quick
      test_pretty_roundtrip_idempotent;
  ]

let suite_interp =
  [
    Alcotest.test_case "factorial" `Quick test_interp_factorial;
    Alcotest.test_case "gcd" `Quick test_interp_gcd_loop;
    Alcotest.test_case "bubble sort" `Quick test_interp_arrays_sort;
    Alcotest.test_case "switch fallthrough" `Quick
      test_interp_switch_fallthrough;
    Alcotest.test_case "switch default" `Quick test_interp_switch_default;
    Alcotest.test_case "continue" `Quick test_interp_continue;
    Alcotest.test_case "short circuit" `Quick test_interp_short_circuit;
    Alcotest.test_case "division by zero" `Quick
      test_interp_division_by_zero;
    Alcotest.test_case "assert failure" `Quick test_interp_assert_failure;
    Alcotest.test_case "halt and fuel" `Quick test_interp_halt_and_fuel;
    Alcotest.test_case "hooks: nondet and memory" `Quick
      test_interp_hooks_nondet_and_memory;
    Alcotest.test_case "hooks: statements and entries" `Quick
      test_interp_statement_hook_and_fname;
    Alcotest.test_case "global init order" `Quick
      test_interp_global_init_order;
    Alcotest.test_case "globals snapshot" `Quick test_interp_globals_snapshot;
    Alcotest.test_case "block scoping" `Quick test_interp_block_scoping;
  ]

let () =
  Alcotest.run "minic"
    [
      ("value", suite_value);
      ("lexer", suite_lexer);
      ("parser", suite_parser);
      ("typecheck", suite_typecheck);
      ("pretty", suite_pretty);
      ("interp", suite_interp);
    ]
