module Heap = Sim.Heap
module Kernel = Sim.Kernel
module Signal = Sim.Signal
module Clock = Sim.Clock

(* Tests for the discrete-event simulation kernel: scheduling order, delta
   cycles, signals, clocks, timeouts, and heap invariants. *)

let test_heap_ordering () =
  let heap = Heap.create () in
  List.iter (fun (k, v) -> Heap.push heap k v)
    [ (5, "e"); (1, "a"); (3, "c"); (1, "b"); (4, "d") ];
  let order = ref [] in
  while not (Heap.is_empty heap) do
    let _, v = Heap.pop heap in
    order := v :: !order
  done;
  (* equal keys pop in insertion order (stability) *)
  Alcotest.(check (list string))
    "sorted stable" [ "a"; "b"; "c"; "d"; "e" ] (List.rev !order)

let test_heap_empty () =
  let heap = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty heap);
  Alcotest.(check (option int)) "no min" None (Heap.min_key heap);
  Alcotest.check_raises "pop empty" Not_found (fun () ->
      ignore (Heap.pop heap))

let heap_qcheck =
  QCheck.Test.make ~name:"heap pops keys in nondecreasing order" ~count:200
    QCheck.(list small_int)
    (fun keys ->
      let heap = Heap.create () in
      List.iter (fun k -> Heap.push heap k k) keys;
      let rec drain last acc =
        if Heap.is_empty heap then List.rev acc
        else
          let k, _ = Heap.pop heap in
          if k < last then raise Exit else drain k (k :: acc)
      in
      try List.length (drain min_int []) = List.length keys
      with Exit -> false)

let test_spawn_runs () =
  let kernel = Kernel.create () in
  let trace = ref [] in
  let log s = trace := s :: !trace in
  ignore (Kernel.spawn kernel ~name:"a" (fun () -> log "a"));
  ignore (Kernel.spawn kernel ~name:"b" (fun () -> log "b"));
  Kernel.run kernel;
  Alcotest.(check (list string)) "both ran in order" [ "a"; "b" ]
    (List.rev !trace)

let test_wait_notify_delta () =
  let kernel = Kernel.create () in
  let ev = Kernel.event kernel "ev" in
  let trace = ref [] in
  let log s = trace := s :: !trace in
  ignore
    (Kernel.spawn kernel ~name:"waiter" (fun () ->
         log "wait";
         Kernel.wait_event ev;
         log "woken"));
  ignore
    (Kernel.spawn kernel ~name:"notifier" (fun () ->
         log "notify";
         Kernel.notify ev));
  Kernel.run kernel;
  Alcotest.(check (list string))
    "delta notification wakes in next delta" [ "wait"; "notify"; "woken" ]
    (List.rev !trace);
  Alcotest.(check int) "one delta cycle" 1 (Kernel.delta_count kernel)

let test_timed_notify () =
  let kernel = Kernel.create () in
  let ev = Kernel.event kernel "ev" in
  let woken_at = ref (-1) in
  ignore
    (Kernel.spawn kernel ~name:"waiter" (fun () ->
         Kernel.wait_event ev;
         woken_at := Kernel.now kernel));
  ignore
    (Kernel.spawn kernel ~name:"notifier" (fun () -> Kernel.notify_in ev 42));
  Kernel.run kernel;
  Alcotest.(check int) "woken at t=42" 42 !woken_at

let test_wait_for_accumulates () =
  let kernel = Kernel.create () in
  let times = ref [] in
  ignore
    (Kernel.spawn kernel ~name:"p" (fun () ->
         Kernel.wait_for kernel 10;
         times := Kernel.now kernel :: !times;
         Kernel.wait_for kernel 5;
         times := Kernel.now kernel :: !times));
  Kernel.run kernel;
  Alcotest.(check (list int)) "10 then 15" [ 10; 15 ] (List.rev !times)

let test_wait_any_timeout () =
  let kernel = Kernel.create () in
  let ev = Kernel.event kernel "never" in
  let result = ref None in
  ignore
    (Kernel.spawn kernel ~name:"p" (fun () ->
         result := Some (Kernel.wait_any ~timeout:7 [ ev ])));
  Kernel.run kernel;
  (match !result with
  | Some Kernel.Timeout -> ()
  | Some (Kernel.Woken_by _) -> Alcotest.fail "expected timeout"
  | None -> Alcotest.fail "process never resumed");
  Alcotest.(check int) "time advanced to timeout" 7 (Kernel.now kernel)

let test_wait_any_event_beats_timeout () =
  let kernel = Kernel.create () in
  let ev = Kernel.event kernel "fast" in
  let result = ref None in
  ignore
    (Kernel.spawn kernel ~name:"p" (fun () ->
         result := Some (Kernel.wait_any ~timeout:100 [ ev ])));
  ignore
    (Kernel.spawn kernel ~name:"q" (fun () ->
         Kernel.wait_for kernel 3;
         Kernel.notify ev));
  Kernel.run kernel;
  (match !result with
  | Some (Kernel.Woken_by woke) ->
    Alcotest.(check string) "right event" "fast" (Kernel.event_name woke)
  | Some Kernel.Timeout -> Alcotest.fail "timeout should not win"
  | None -> Alcotest.fail "process never resumed");
  Alcotest.(check int) "woken at t=3" 3 (Kernel.now kernel)

let test_immediate_notification () =
  let kernel = Kernel.create () in
  let ev = Kernel.event kernel "ev" in
  let deltas_when_woken = ref (-1) in
  ignore
    (Kernel.spawn kernel ~name:"waiter" (fun () ->
         Kernel.wait_event ev;
         deltas_when_woken := Kernel.delta_count kernel));
  ignore
    (Kernel.spawn kernel ~name:"notifier" (fun () ->
         Kernel.notify_immediate ev));
  Kernel.run kernel;
  Alcotest.(check int) "woken without delta" 0 !deltas_when_woken

let test_signal_update_semantics () =
  let kernel = Kernel.create () in
  let signal = Signal.create kernel ~name:"s" 0 in
  let observed = ref [] in
  ignore
    (Kernel.spawn kernel ~name:"writer" (fun () ->
         Signal.write signal 1;
         (* not yet committed: evaluation phase still sees old value *)
         observed := ("writer", Signal.read signal) :: !observed));
  ignore
    (Kernel.spawn kernel ~name:"reader" (fun () ->
         Signal.wait_change signal;
         observed := ("reader", Signal.read signal) :: !observed));
  Kernel.run kernel;
  Alcotest.(check (list (pair string int)))
    "write commits in update phase"
    [ ("writer", 0); ("reader", 1) ]
    (List.rev !observed)

let test_signal_last_write_wins () =
  let kernel = Kernel.create () in
  let signal = Signal.create kernel ~name:"s" 0 in
  ignore
    (Kernel.spawn kernel ~name:"writer" (fun () ->
         Signal.write signal 1;
         Signal.write signal 2));
  Kernel.run kernel;
  Alcotest.(check int) "last write" 2 (Signal.read signal)

let test_signal_no_change_no_event () =
  let kernel = Kernel.create () in
  let signal = Signal.create kernel ~name:"s" 5 in
  let woken = ref false in
  ignore
    (Kernel.spawn kernel ~name:"reader" (fun () ->
         Signal.wait_change signal;
         woken := true));
  ignore
    (Kernel.spawn kernel ~name:"writer" (fun () -> Signal.write signal 5));
  Kernel.run kernel;
  Alcotest.(check bool) "same value does not notify" false !woken

let test_clock_cycles () =
  let kernel = Kernel.create () in
  let clock = Clock.create kernel ~name:"clk" ~period:10 () in
  let count = ref 0 in
  ignore
    (Kernel.spawn kernel ~name:"counter" (fun () ->
         let rec loop () =
           Clock.wait_posedge clock;
           incr count;
           loop ()
         in
         loop ()));
  Kernel.run ~max_time:95 kernel;
  (* posedges at t=0,10,...,90 => 10 observed *)
  Alcotest.(check int) "ten edges observed" 10 !count;
  Alcotest.(check int) "clock counted them" 10 (Clock.cycles clock)

let test_stop_from_process () =
  let kernel = Kernel.create () in
  let steps = ref 0 in
  ignore
    (Kernel.spawn kernel ~name:"p" (fun () ->
         let rec loop () =
           incr steps;
           if !steps = 5 then Kernel.stop kernel;
           Kernel.wait_for kernel 1;
           loop ()
         in
         loop ()));
  Kernel.run kernel;
  Alcotest.(check bool) "stopped early" true (!steps >= 5 && !steps < 20);
  Alcotest.(check bool) "stopped flag" true (Kernel.stopped kernel)

let test_resume_after_max_time () =
  let kernel = Kernel.create () in
  let ticks = ref 0 in
  ignore
    (Kernel.spawn kernel ~name:"p" (fun () ->
         let rec loop () =
           incr ticks;
           Kernel.wait_for kernel 10;
           loop ()
         in
         loop ()));
  Kernel.run ~max_time:35 kernel;
  let first = !ticks in
  Kernel.run ~max_time:75 kernel;
  Alcotest.(check bool) "made progress on resume" true (!ticks > first)

let test_producer_consumer () =
  (* Two processes rendezvous through events; checks multi-process
     interleaving over many iterations. *)
  let kernel = Kernel.create () in
  let request = Kernel.event kernel "request" in
  let response = Kernel.event kernel "response" in
  let served = ref 0 in
  ignore
    (Kernel.spawn kernel ~name:"server" (fun () ->
         let rec loop () =
           Kernel.wait_event request;
           incr served;
           Kernel.notify response;
           loop ()
         in
         loop ()));
  ignore
    (Kernel.spawn kernel ~name:"client" (fun () ->
         for _ = 1 to 100 do
           Kernel.notify request;
           Kernel.wait_event response
         done;
         Kernel.stop kernel));
  Kernel.run kernel;
  Alcotest.(check int) "served all requests" 100 !served

let suite =
  [
    Alcotest.test_case "heap ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap empty" `Quick test_heap_empty;
    QCheck_alcotest.to_alcotest heap_qcheck;
    Alcotest.test_case "spawn runs" `Quick test_spawn_runs;
    Alcotest.test_case "wait/notify delta" `Quick test_wait_notify_delta;
    Alcotest.test_case "timed notify" `Quick test_timed_notify;
    Alcotest.test_case "wait_for accumulates" `Quick test_wait_for_accumulates;
    Alcotest.test_case "wait_any timeout" `Quick test_wait_any_timeout;
    Alcotest.test_case "wait_any event first" `Quick
      test_wait_any_event_beats_timeout;
    Alcotest.test_case "immediate notification" `Quick
      test_immediate_notification;
    Alcotest.test_case "signal update semantics" `Quick
      test_signal_update_semantics;
    Alcotest.test_case "signal last write wins" `Quick
      test_signal_last_write_wins;
    Alcotest.test_case "signal no-change no-event" `Quick
      test_signal_no_change_no_event;
    Alcotest.test_case "clock cycles" `Quick test_clock_cycles;
    Alcotest.test_case "stop from process" `Quick test_stop_from_process;
    Alcotest.test_case "resume after max_time" `Quick
      test_resume_after_max_time;
    Alcotest.test_case "producer/consumer rendezvous" `Quick
      test_producer_consumer;
  ]

let () = Alcotest.run "sim" [ ("kernel", suite) ]
