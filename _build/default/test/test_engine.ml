(* Tests for the verification-session layer: both approaches must yield
   identical per-property verdicts on the same software, trace events must
   round-trip through JSONL, and campaign test-case boundaries must be
   published on the bus. *)

module Session = Verif.Session
module Result = Verif.Result
module Trace = Verif.Trace

let check_verdict = Alcotest.check (Alcotest.testable Verdict.pp Verdict.equal)

(* a small program observable on every backend: raises its initialization
   flag (the approach-1 handshake), counts to 8, then marks completion *)
let source =
  {|
    int flag;
    int x;
    int finished;

    void main(void) {
      int i;
      flag = 1;
      for (i = 0; i < 8; i = i + 1) {
        x = x + 1;
      }
      finished = 1;
    }
  |}

let program_info () = Minic.Typecheck.check (Minic.C_parser.parse source)

let config ?(trace = Trace.null) ~name ~flag () =
  {
    Session.default_config with
    Session.session_name = name;
    propositions =
      [ ("p_done", "finished == 1"); ("p_overflow", "x > 100") ];
    properties =
      [
        ("eventually_done", "F p_done");
        ("never_overflow", "G !p_overflow");
        ("not_yet_done", "G !p_done");
      ];
    bound = Some 100_000;
    flag;
    trace;
  }

let property_names = [ "eventually_done"; "never_overflow"; "not_yet_done" ]

let run_session ?trace ~name ~flag backend =
  let session =
    Session.create ~info:(program_info ())
      (config ?trace ~name ~flag ())
      backend
  in
  Session.boot session;
  Session.run session;
  let result = Session.result session in
  Session.close session;
  result

let test_approaches_agree () =
  let r1 = run_session ~name:"a1" ~flag:(Some "flag") Session.Soc_model in
  let r2 = run_session ~name:"a2" ~flag:None Session.Derived_model in
  Alcotest.(check string) "approach-1 backend name"
    "approach-1 (microprocessor model)" r1.Result.backend;
  Alcotest.(check string) "approach-2 backend name"
    "approach-2 (derived SystemC model)" r2.Result.backend;
  List.iter
    (fun name ->
      check_verdict (name ^ " agrees across approaches")
        (Result.verdict r1 name) (Result.verdict r2 name))
    property_names;
  check_verdict "completion observed" Verdict.True
    (Result.verdict r1 "eventually_done");
  check_verdict "safety violated once done" Verdict.False
    (Result.verdict r1 "not_yet_done");
  check_verdict "overflow guard stays pending" Verdict.Pending
    (Result.verdict r1 "never_overflow");
  Alcotest.(check bool) "approach-1 triggered" true (r1.Result.triggers > 0);
  Alcotest.(check bool) "approach-2 triggered" true (r2.Result.triggers > 0);
  (* final verdicts are stamped in backend time units *)
  Alcotest.(check bool) "first-final time recorded" true
    (Result.first_final_at r1 "eventually_done" <> None
    && Result.first_final_at r2 "eventually_done" <> None);
  Alcotest.(check (option int)) "non-final property has no stamp" None
    (Result.first_final_at r2 "never_overflow")

let test_reference_backend_agrees () =
  let r0 = run_session ~name:"ref" ~flag:None Session.Reference in
  Alcotest.(check string) "backend name" "reference interpreter"
    r0.Result.backend;
  check_verdict "completion observed" Verdict.True
    (Result.verdict r0 "eventually_done");
  check_verdict "safety violated once done" Verdict.False
    (Result.verdict r0 "not_yet_done")

let kind_is_handshake e =
  match e.Trace.kind with Trace.Handshake_armed _ -> true | _ -> false

let kind_is_verdict_change e =
  match e.Trace.kind with Trace.Verdict_change _ -> true | _ -> false

let test_trace_events_and_roundtrip () =
  let bus = Trace.create () in
  let sink, events = Trace.memory_sink () in
  Trace.attach bus sink;
  let _result =
    run_session ~trace:bus ~name:"traced" ~flag:None Session.Derived_model
  in
  let events = events () in
  Alcotest.(check bool) "events recorded" true (List.length events > 0);
  Alcotest.(check bool) "handshake armed published" true
    (List.exists kind_is_handshake events);
  Alcotest.(check bool) "verdict change published" true
    (List.exists kind_is_verdict_change events);
  Alcotest.(check bool) "trigger counter" true (Trace.triggers bus > 0);
  Alcotest.(check bool) "sample counter" true (Trace.samples bus > 0);
  (* every event survives the JSONL round trip *)
  List.iter
    (fun event ->
      match Trace.event_of_json (Trace.event_to_json event) with
      | Ok parsed ->
        Alcotest.(check bool) "round trip identical" true (parsed = event)
      | Error msg -> Alcotest.failf "round trip failed: %s" msg)
    events

let test_jsonl_file_sink () =
  let path = Filename.temp_file "verif_trace" ".jsonl" in
  let bus = Trace.create () in
  Trace.attach bus (Trace.jsonl_file path);
  let _result =
    run_session ~trace:bus ~name:"to-file" ~flag:None Session.Derived_model
  in
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Sys.remove path;
  Alcotest.(check bool) "file has events" true (List.length lines > 0);
  List.iter
    (fun line ->
      match Trace.event_of_json line with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "unparseable line %S: %s" line msg)
    lines

let test_campaign_trace_events () =
  let bus = Trace.create () in
  let sink, events = Trace.memory_sink () in
  Trace.attach bus sink;
  let session =
    Eee.Harness.approach2 ~fault_rate:0.0 ~seed:11 ~chunk_statements:50
      ~trace:bus ()
  in
  Eee.Driver.install_spec session [ Eee.Eee_spec.Read ];
  let config =
    { Eee.Driver.default_config with test_cases = 5; seed = 5;
      watchdog_chunks = 400 }
  in
  let outcome = Eee.Driver.run_campaign session config Eee.Eee_spec.Read in
  Alcotest.(check int) "all cases completed" 5
    (Result.completed_cases outcome);
  let count pred = List.length (List.filter pred (events ())) in
  Alcotest.(check int) "one begin event per measured case" 5
    (count (fun e ->
         match e.Trace.kind with Trace.Test_case_begin _ -> true | _ -> false));
  Alcotest.(check int) "one end event per measured case" 5
    (count (fun e ->
         match e.Trace.kind with Trace.Test_case_end _ -> true | _ -> false));
  Alcotest.(check int) "no watchdog fired" 0
    (count (fun e ->
         match e.Trace.kind with Trace.Watchdog_fired _ -> true | _ -> false))

let suite =
  [
    Alcotest.test_case "approaches agree" `Quick test_approaches_agree;
    Alcotest.test_case "reference backend agrees" `Quick
      test_reference_backend_agrees;
    Alcotest.test_case "trace events and JSONL round trip" `Quick
      test_trace_events_and_roundtrip;
    Alcotest.test_case "jsonl file sink" `Quick test_jsonl_file_sink;
    Alcotest.test_case "campaign trace events" `Quick
      test_campaign_trace_events;
  ]

let () = Alcotest.run "engine" [ ("session", suite) ]
