(* Integration tests for approach 2: the derived SystemC model executes as a
   simulation thread, the program-counter event triggers the checker, and
   direct memory accesses go through the virtual memory model (paper
   Section 3.2). Includes a cross-approach agreement test. *)

module C2sc = Esw.C2sc
module Vmem = Esw.Vmem
module Esw_model = Esw.Esw_model
module Esw_prop = Esw.Esw_prop
module Checker = Sctc.Checker
module Trigger = Sctc.Trigger
module Kernel = Sim.Kernel

let check_verdict = Alcotest.check (Alcotest.testable Verdict.pp Verdict.equal)

let derive source =
  let program = Minic.C_parser.parse source in
  let info = Minic.Typecheck.check program in
  C2sc.derive info

let contains needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec search i =
    i + nl <= hl && (String.sub haystack i nl = needle || search (i + 1))
  in
  search 0

(* --- the C2SystemC translation ---------------------------------------------- *)

let test_derive_inserts_fname () =
  let derived =
    derive "int x; void f(void) { x = 1; } void main(void) { f(); }"
  in
  Alcotest.(check bool) "fname member added" true
    (List.mem_assoc "fname" derived.C2sc.member_vars);
  List.iter
    (fun (f : Minic.Ast.func) ->
      match f.Minic.Ast.f_body with
      | { Minic.Ast.sdesc =
            Minic.Ast.Assign (Minic.Ast.Lvar "fname", _); _ } :: _ ->
        ()
      | _ -> Alcotest.failf "function %s lacks fname tracking" f.Minic.Ast.f_name)
    derived.C2sc.model_program.Minic.Ast.funcs

let test_derive_respects_existing_fname () =
  let derived = derive "int fname; void main(void) { }" in
  let count =
    List.length
      (List.filter (fun (n, _) -> n = "fname") derived.C2sc.member_vars)
  in
  Alcotest.(check int) "single fname member" 1 count

let test_derive_members_and_accesses () =
  let derived =
    derive
      {|
        int a;
        int table[4];
        const int C = 5;
        void main(void) {
          a = *(0x100);
          *(0x200) = a;
          table[0] = mem_read(0x300);
        }
      |}
  in
  Alcotest.(check bool) "globals become members" true
    (List.mem_assoc "a" derived.C2sc.member_vars
    && List.mem_assoc "table" derived.C2sc.member_vars);
  Alcotest.(check bool) "consts are not members" true
    (not (List.mem_assoc "C" derived.C2sc.member_vars));
  Alcotest.(check int) "memory accesses converted to VM" 3
    derived.C2sc.converted_accesses

let test_derive_systemc_rendering () =
  let derived = derive "int x; void main(void) { x = 1; }" in
  let text = C2sc.to_systemc derived in
  Alcotest.(check bool) "SC_MODULE" true (contains "SC_MODULE(ESW_SC)" text);
  Alcotest.(check bool) "pc event" true (contains "esw_pc_event" text);
  Alcotest.(check bool) "vmem" true (contains "VirtualMemModel" text);
  Alcotest.(check bool) "SC_THREAD main" true (contains "SC_THREAD(main)" text)

(* --- virtual memory model ----------------------------------------------------- *)

let test_vmem_sparse_and_devices () =
  let vmem = Vmem.create () in
  Alcotest.(check int) "unmapped reads zero" 0 (Vmem.read vmem 0xDEAD);
  Vmem.write vmem 0xDEAD 7;
  Alcotest.(check int) "sparse backing" 7 (Vmem.read vmem 0xDEAD);
  let hits = ref 0 in
  Vmem.map_device vmem
    {
      Cpu.Bus.dev_name = "port";
      base = 0x100;
      size = 1;
      read = (fun _ -> incr hits; 55);
      write = (fun _ _ -> incr hits);
    };
  Alcotest.(check int) "device read" 55 (Vmem.read vmem 0x100);
  Vmem.write vmem 0x100 1;
  Alcotest.(check int) "device hit count" 2 !hits;
  Alcotest.(check int) "device accesses tracked" 2 (Vmem.device_accesses vmem);
  Alcotest.(check int) "total accesses" 5 (Vmem.accesses vmem)

(* --- model execution ------------------------------------------------------------ *)

let model_of ?on_tick source =
  let kernel = Kernel.create () in
  let vmem = Vmem.create () in
  let derived = derive source in
  let model = Esw_model.create kernel ?on_tick derived ~vmem in
  (kernel, model)

let test_time_is_statement_count () =
  let source =
    {|
      int n;
      void main(void) {
        n = 1;
        n = 2;
        n = 3;
      }
    |}
  in
  let kernel, model = model_of source in
  ignore (Esw_model.start model ~entry:"main");
  Kernel.run ~max_time:1000 kernel;
  (match Esw_model.outcome model with
  | Esw_model.Done (Minic.Interp.Finished _) -> ()
  | _ -> Alcotest.fail "model should finish");
  (* 1 inserted fname assignment + 3 statements *)
  Alcotest.(check int) "statements" 4 (Esw_model.statements model);
  (* one extra time unit for the final post-execution sample *)
  Alcotest.(check int) "simulation time = statements + 1" 5 (Kernel.now kernel)

let test_pc_event_triggers_checker () =
  let source =
    {|
      int counter;
      void main(void) {
        while (counter < 30) { counter = counter + 1; }
      }
    |}
  in
  let kernel, model = model_of source in
  let checker = Checker.create ~name:"pc" () in
  Checker.register_proposition checker
    (Esw_prop.var_pred model ~prop_name:"done30" "counter" (fun v -> v = 30));
  Checker.add_property_text checker ~name:"terminates" "F done30";
  ignore (Trigger.on_event kernel (Esw_model.pc_event model) checker);
  ignore (Esw_model.start model ~entry:"main");
  Kernel.run ~max_time:10_000 kernel;
  check_verdict "termination observed" Verdict.True
    (Checker.verdict checker "terminates");
  Alcotest.(check bool) "one checker step per statement" true
    (abs (Checker.steps checker - Esw_model.statements model) <= 1)

let test_statement_bounds () =
  (* counter reaches 10 after ~3 statements per increment: the bounded
     property with a generous statement bound holds, a tight one fails *)
  let source =
    {|
      int counter;
      void main(void) {
        while (counter < 10) { counter = counter + 1; }
        while (true) { counter = counter; }
      }
    |}
  in
  let kernel, model = model_of source in
  let checker = Checker.create ~name:"tb" () in
  Checker.register_proposition checker
    (Esw_prop.var_eq model ~prop_name:"at10" "counter" 10);
  Checker.add_property_text checker ~name:"loose" "F[100] at10";
  Checker.add_property_text checker ~name:"tight" "F[5] at10";
  ignore (Trigger.on_event kernel (Esw_model.pc_event model) checker);
  ignore (Esw_model.start model ~entry:"main");
  Kernel.run ~max_time:500 kernel;
  check_verdict "loose bound validated" Verdict.True
    (Checker.verdict checker "loose");
  check_verdict "tight bound violated" Verdict.False
    (Checker.verdict checker "tight")

let test_in_function_proposition () =
  let source =
    {|
      int n;
      void helper(void) { n = n + 1; }
      void main(void) {
        helper();
        while (true) { n = n; }
      }
    |}
  in
  let kernel, model = model_of source in
  let checker = Checker.create ~name:"fn" () in
  Checker.register_proposition checker (Esw_prop.in_function model "helper");
  Checker.add_property_text checker ~name:"enters_helper" "F in_helper";
  ignore (Trigger.on_event kernel (Esw_model.pc_event model) checker);
  ignore (Esw_model.start model ~entry:"main");
  Kernel.run ~max_time:200 kernel;
  check_verdict "helper entry observed" Verdict.True
    (Checker.verdict checker "enters_helper")

let test_crash_reported () =
  let kernel, model = model_of "void main(void) { assert(false); }" in
  ignore (Esw_model.start model ~entry:"main");
  Kernel.run ~max_time:100 kernel;
  match Esw_model.outcome model with
  | Esw_model.Crashed (Minic.Interp.Assertion_failed _) -> ()
  | _ -> Alcotest.fail "expected assertion crash"

let test_vm_devices_from_model () =
  (* software talks to a flash controller mapped into the VM *)
  let base = Cpu.Memory_map.flash_ctrl_base in
  let source =
    Printf.sprintf
      {|
        const int FC = %d;
        int result;
        void main(void) {
          *(FC + 1) = 3;
          *(FC + 2) = 999;
          *(FC + 0) = 1;
          while (*(FC + 3) != 0) { }
          *(FC + 1) = 3;
          result = *(FC + 2);
        }
      |}
      base
  in
  let kernel = Kernel.create () in
  let vmem = Vmem.create () in
  let flash = Dataflash.Flash.create Dataflash.Flash.default_config in
  let ctrl = Dataflash.Flash_ctrl.create flash in
  Vmem.map_device vmem (Dataflash.Flash_ctrl.ctrl_device ctrl ~base);
  let derived = derive source in
  let model =
    Esw_model.create kernel
      ~on_tick:(fun () -> Dataflash.Flash.tick flash)
      derived ~vmem
  in
  ignore (Esw_model.start model ~entry:"main");
  Kernel.run ~max_time:10_000 kernel;
  (match Esw_model.outcome model with
  | Esw_model.Done _ -> ()
  | _ -> Alcotest.fail "model should finish");
  Alcotest.(check int) "flash programmed" 999
    (Dataflash.Flash.read_word flash 3);
  Alcotest.(check int) "read back" 999 (Esw_model.read_member model "result")

(* --- cross-approach agreement ------------------------------------------------- *)

(* The same software and the same property (unbounded, so timing-reference
   differences cannot matter) must produce the same verdict under both
   approaches. *)
let cross_program bad_after =
  Printf.sprintf
    {|
      int flag;
      int i;
      int bad;
      void main(void) {
        flag = 1;
        for (i = 0; i < 100; i++) {
          if (i == %d) { bad = 1; }
        }
        while (true) { }
      }
    |}
    bad_after

let approach1_verdict source =
  let program = Minic.C_parser.parse source in
  let info = Minic.Typecheck.check program in
  let soc = Platform.Soc.create () in
  Platform.Soc.load soc (Mcc.Codegen.compile info);
  let checker = Checker.create ~name:"x" () in
  Platform.Mem_prop.register_all checker
    [ Platform.Mem_prop.var_eq soc ~prop_name:"bad_set" "bad" 1 ];
  Checker.add_property_text checker ~name:"p" "G !bad_set";
  ignore (Platform.Esw_monitor.attach soc ~flag:"flag" checker);
  Platform.Soc.run ~max_cycles:8000 soc;
  Checker.verdict checker "p"

let approach2_verdict source =
  let kernel = Kernel.create () in
  let vmem = Vmem.create () in
  let derived = derive source in
  let model = Esw_model.create kernel derived ~vmem in
  let checker = Checker.create ~name:"x" () in
  Checker.register_proposition checker
    (Esw_prop.var_eq model ~prop_name:"bad_set" "bad" 1);
  Checker.add_property_text checker ~name:"p" "G !bad_set";
  ignore (Trigger.on_event kernel (Esw_model.pc_event model) checker);
  ignore (Esw_model.start model ~entry:"main");
  Kernel.run ~max_time:3000 kernel;
  Checker.verdict checker "p"

let test_approaches_agree () =
  (* program that violates the property *)
  let bad = cross_program 50 in
  check_verdict "approach 1 sees violation" Verdict.False
    (approach1_verdict bad);
  check_verdict "approach 2 sees violation" Verdict.False
    (approach2_verdict bad);
  (* program that never violates (condition out of reach) *)
  let good = cross_program 1000 in
  check_verdict "approach 1 pending" Verdict.Pending (approach1_verdict good);
  check_verdict "approach 2 pending" Verdict.Pending (approach2_verdict good)

let test_speed_advantage_of_approach2 () =
  (* the same functional progress takes far fewer checker steps under the
     statement-time reference than cycles under the clock reference *)
  let source = cross_program 50 in
  (* approach 1: cycles until violation *)
  let program = Minic.C_parser.parse source in
  let info = Minic.Typecheck.check program in
  let soc = Platform.Soc.create () in
  Platform.Soc.load soc (Mcc.Codegen.compile info);
  let checker1 = Checker.create ~name:"a1" () in
  Platform.Mem_prop.register_all checker1
    [ Platform.Mem_prop.var_eq soc ~prop_name:"bad_set" "bad" 1 ];
  Checker.add_property_text checker1 ~name:"p" "G !bad_set";
  let steps1 = ref 0 in
  Checker.on_violation checker1 (fun _ step -> steps1 := step);
  ignore (Platform.Esw_monitor.attach soc ~flag:"flag" checker1);
  Platform.Soc.run ~max_cycles:8000 soc;
  (* approach 2: statements until violation *)
  let kernel = Kernel.create () in
  let vmem = Vmem.create () in
  let model = Esw_model.create kernel (derive source) ~vmem in
  let checker2 = Checker.create ~name:"a2" () in
  Checker.register_proposition checker2
    (Esw_prop.var_eq model ~prop_name:"bad_set" "bad" 1);
  Checker.add_property_text checker2 ~name:"p" "G !bad_set";
  let steps2 = ref 0 in
  Checker.on_violation checker2 (fun _ step -> steps2 := step);
  ignore (Trigger.on_event kernel (Esw_model.pc_event model) checker2);
  ignore (Esw_model.start model ~entry:"main");
  Kernel.run ~max_time:3000 kernel;
  Alcotest.(check bool) "both found the violation" true
    (!steps1 > 0 && !steps2 > 0);
  Alcotest.(check bool)
    (Printf.sprintf "approach 1 needs more triggers (%d vs %d)" !steps1 !steps2)
    true
    (!steps1 > !steps2)

let suite_c2sc =
  [
    Alcotest.test_case "fname insertion" `Quick test_derive_inserts_fname;
    Alcotest.test_case "existing fname respected" `Quick
      test_derive_respects_existing_fname;
    Alcotest.test_case "members and VM accesses" `Quick
      test_derive_members_and_accesses;
    Alcotest.test_case "SystemC rendering" `Quick
      test_derive_systemc_rendering;
  ]

let suite_model =
  [
    Alcotest.test_case "vmem sparse + devices" `Quick
      test_vmem_sparse_and_devices;
    Alcotest.test_case "time = statement count" `Quick
      test_time_is_statement_count;
    Alcotest.test_case "pc event triggers checker" `Quick
      test_pc_event_triggers_checker;
    Alcotest.test_case "statement-time bounds" `Quick test_statement_bounds;
    Alcotest.test_case "in_function proposition" `Quick
      test_in_function_proposition;
    Alcotest.test_case "crash reported" `Quick test_crash_reported;
    Alcotest.test_case "VM devices" `Quick test_vm_devices_from_model;
  ]

let suite_cross =
  [
    Alcotest.test_case "approaches agree" `Quick test_approaches_agree;
    Alcotest.test_case "approach 2 needs fewer triggers" `Quick
      test_speed_advantage_of_approach2;
  ]

let () =
  Alcotest.run "esw"
    [
      ("c2systemc", suite_c2sc);
      ("derived-model", suite_model);
      ("cross-approach", suite_cross);
    ]
