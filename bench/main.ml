(* Benchmark harness: regenerates the paper's evaluation artifacts.

     dune exec bench/main.exe                 -- all tables, default scale
     dune exec bench/main.exe -- --table fig7
     dune exec bench/main.exe -- --table fig8 --scale 2
     dune exec bench/main.exe -- --no-micro   -- skip the Bechamel suite

   Fig. 7 -- the formal baselines (BLAST analog = predicate abstraction
   with refinement; CBMC analog = bounded model checking) on the seven
   EEELib operation properties, each with a per-tool time budget. The
   paper reports BLAST aborting with exceptions and CBMC stuck unwinding
   (> 5 h); here the analogous outcomes appear at laptop-scale budgets.

   Fig. 8 -- both simulation-based approaches on the same seven
   properties: approach 1 (microprocessor model, no time bound) and
   approach 2 (derived SystemC model) with two statement time bounds and
   without. Test-case counts and bounds are scaled from the paper's
   100000/1000000 test cases and 1000/100000 bounds; see EXPERIMENTS.md. *)

module Spec = Eee.Eee_spec
module Driver = Eee.Driver
module Harness = Eee.Harness
module Checker = Sctc.Checker
module Coverage = Sctc.Coverage
module Registry = Obs.Registry

let scale = ref 1
let fig7_timeout = ref 5.0
let table = ref "all"
let run_micro = ref true
let jobs = ref 4
let ci_mode = ref false

(* ------------------------------------------------------------------ *)
(* Fig. 7: BLAST-analog and CBMC-analog on the case-study properties   *)

let fig7_property op =
  (* response property over the closed analysis harness, as the paper's
     Spec-tool flow would state it *)
  let info = (Eee.Eee_program.analysis_derive ()).Esw.C2sc.model_info in
  let entry_id = Minic.Typecheck.func_id info (Spec.entry_function op) in
  let property = Sctc.Prop.parse_exn ~syntax:`Fltl "G (p_called -> F[40] p_done)" in
  let predicates =
    [
      ("p_called", Printf.sprintf "fname == %d" entry_id);
      ( "p_done",
        Printf.sprintf "eee_done_op == %d && eee_done_ret >= 0"
          (Spec.op_code op) );
    ]
  in
  Spec_inline.instrument ~property ~predicates info

let run_fig7 () =
  print_endline "=========================================================";
  Printf.printf
    "Fig. 7 -- formal software verification baselines (budget %.0fs/tool)\n"
    !fig7_timeout;
  print_endline "=========================================================";
  Printf.printf "%-10s | %-30s | %-30s\n" "" "BLAST analog (absref)"
    "CBMC analog (bmc)";
  Printf.printf "%-10s | %9s %-20s | %9s %-20s\n" "Property" "V.T.(s)"
    "Result" "V.T.(s)" "Result";
  Printf.printf "%s\n" (String.make 78 '-');
  List.iter
    (fun op ->
      let instrumented = fig7_property op in
      let blast =
        Absref.Cegar.check ~timeout_seconds:!fig7_timeout ~max_predicates:40
          ~max_art_nodes:40_000 instrumented
      in
      let blast_result =
        match blast.Absref.Cegar.result with
        | Absref.Cegar.Safe -> "safe"
        | Absref.Cegar.Bug _ -> "bug (poss. spurious)"
        | Absref.Cegar.Aborted _ -> "Exception"
        | Absref.Cegar.Unknown _ -> "Exception (no prog.)"
      in
      let cbmc =
        Bmc.check ~unwind:20 ~timeout_seconds:!fig7_timeout instrumented
      in
      let cbmc_result =
        match cbmc.Bmc.result with
        | Bmc.Safe { complete = true } -> "safe"
        | Bmc.Safe { complete = false } -> "safe up to bound"
        | Bmc.Unsafe _ -> "counterexample"
        | Bmc.Out_of_time -> "> budget (unwind)"
        | Bmc.Gave_up _ -> "> budget (blowup)"
      in
      Printf.printf "%-10s | %9.2f %-20s | %9.2f %-20s\n" (Spec.op_name op)
        blast.Absref.Cegar.seconds blast_result cbmc.Bmc.seconds cbmc_result)
    Spec.all_ops;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Fig. 8: the two simulation-based approaches                         *)

type column = {
  col_name : string;
  approach : int;
  bound : int option;
  cases : int;
}

let fig8_columns () =
  [
    { col_name = "uP model, no TB"; approach = 1; bound = None;
      cases = 30 * !scale };
    { col_name = "ESW model, TB-2000"; approach = 2; bound = Some 2000;
      cases = 150 * !scale };
    { col_name = "ESW model, TB-10000"; approach = 2; bound = Some 10000;
      cases = 150 * !scale };
    { col_name = "ESW model, no TB"; approach = 2; bound = None;
      cases = 200 * !scale };
  ]

(* the paper's SCTC synthesizes explicit AR-automata: time bounds show up
   as AR generation time inside V.T.; every column is one campaign over
   the worker pool (--jobs) with per-op stimulus split from the seed *)
let column_plan column =
  {
    Harness.default_plan with
    Harness.ops = Spec.all_ops;
    approaches = [ column.approach ];
    cases_per_op = column.cases;
    bound = column.bound;
    engine = Checker.Explicit;
    fault_rate = 0.03;
    seed = 101 + !scale;
  }

let run_fig8_column column =
  Printf.printf "--- %s (%d test cases/op, %d workers) ---\n" column.col_name
    column.cases !jobs;
  Printf.printf "%-10s %9s %7s %7s %9s  %s\n" "Property" "V.T.(s)" "T.C."
    "C.(%)" "verdict" "missing returns";
  let summary = Harness.run_campaign ~workers:!jobs (column_plan column) in
  let total_time = ref 0.0 in
  List.iter2
    (fun op outcome ->
      match outcome.Verif.Campaign.result with
      | Error msg -> Printf.printf "%-10s  job failed: %s\n" (Spec.op_name op) msg
      | Ok result ->
        total_time := !total_time +. result.Verif.Result.vt_seconds;
        Printf.printf "%-10s %9.2f %7d %7.1f %9s  %s\n" (Spec.op_name op)
          result.Verif.Result.vt_seconds
          (Verif.Result.completed_cases result)
          (Verif.Result.coverage_percent result)
          (Verdict.to_string
             (Verif.Result.verdict result (Spec.property_name op)))
          (String.concat "," (Verif.Result.missing_returns result)))
    Spec.all_ops summary.Verif.Campaign.outcomes;
  Printf.printf "column total: %.2fs verification time, %.2fs wall\n\n"
    !total_time summary.Verif.Campaign.wall_seconds;
  !total_time

let run_fig8 () =
  print_endline "=========================================================";
  Printf.printf "Fig. 8 -- simulation-based approaches (scale %d)\n" !scale;
  print_endline "=========================================================";
  let columns = fig8_columns () in
  let times = List.map run_fig8_column columns in
  (* compare cost per test case (the paper's columns differ in T.C. too) *)
  match List.combine columns times with
  | (c1, t1) :: rest ->
    let per_case (c, t) = t /. float_of_int (c.cases * 7) in
    let a1 = per_case (c1, t1) in
    let best =
      List.fold_left (fun acc ct -> min acc (per_case ct)) a1 rest
    in
    if best > 0.0 then
      Printf.printf
        "verification time per test case: approach 1 = %.2f ms, best \
         approach-2 column = %.2f ms (speedup %.1fx)\n\n"
        (1000.0 *. a1) (1000.0 *. best) (a1 /. best)
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* Parallel campaign: sequential vs pooled, recorded as a trajectory   *)

(* stamp bench rows with the source revision, so BENCH_campaign.json
   rows remain attributable as the trajectory grows *)
let git_rev =
  lazy
    (try
       let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
       let line = try String.trim (input_line ic) with End_of_file -> "" in
       match Unix.close_process_in ic with
       | Unix.WEXITED 0 when line <> "" -> line
       | _ -> "unknown"
     with _ -> "unknown")

(* every new row goes through [Verif.Bench_log.render], which places the
   uniform "table" tag first — the reader also tolerates the untagged
   campaign rows written before the tag existed *)
let append_campaign_record ~table members =
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_campaign.json"
  in
  output_string oc (Verif.Bench_log.render ~table members);
  output_char oc '\n';
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* live heap words with the floating garbage collected away — the
   peak-RSS proxy both engines are compared on (process RSS high-water
   marks are monotonic within one process, so deltas of [live_words]
   around each run are the comparable signal) *)
let live_words () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words

let synth_seconds_sum summary =
  List.fold_left
    (fun acc r -> acc +. r.Verif.Result.synthesis_seconds)
    0.0
    (Verif.Campaign.results summary)

(* One pooled run of [plan] against the recorded sequential baseline:
   wall clock, per-stage times from a fresh lib/obs registry (simulate /
   check / synthesize / parse / merge / queue-wait), identity checks,
   and the contention counters of this run (job-queue acquisitions from
   the summary; cons-table counters as deltas of the process-wide
   totals). Returns [(ok_for_ci, record)]. *)
let campaign_round ~plan ~sequential ~cores jobs_n =
  let cons_before = Formula.cons_stats () in
  let cache_before = Ar_automaton.cache_stats () in
  let metrics = Registry.create () in
  let seed_live_before = live_words () in
  let pooled =
    Harness.run_campaign ~workers:jobs_n { plan with Harness.metrics }
  in
  (* the summary (with every retained event buffer) is what the seed
     engine keeps alive until the merge — measure it before rendering *)
  let seed_live = live_words () - seed_live_before in
  let cons_after = Formula.cons_stats () in
  let cache_after = Ar_automaton.cache_stats () in
  let verdicts_identical =
    Verif.Campaign.verdicts sequential = Verif.Campaign.verdicts pooled
  in
  (* charge this render to the merge stage timer of the round *)
  let seed_jsonl = Verif.Campaign.to_jsonl ~metrics pooled in
  let jsonl_identical =
    String.equal (Verif.Campaign.to_jsonl sequential) seed_jsonl
  in
  (* the streaming engine at the same worker count: trace flows to a
     file sink while workers run; nothing accumulates but the summary *)
  let stream_metrics = Registry.create () in
  let stream_path = Filename.temp_file "bench_stream" ".jsonl" in
  let stream_live_before = live_words () in
  let streamed =
    Harness.run_campaign_stream ~workers:jobs_n
      ~sinks:[ Verif.Campaign.jsonl_file_sink stream_path ]
      { plan with Harness.metrics = stream_metrics }
  in
  let stream_live = live_words () - stream_live_before in
  let stream_jsonl = read_file stream_path in
  Sys.remove stream_path;
  let stream_stats =
    match streamed.Verif.Campaign.stream with
    | Some stats -> stats
    | None -> assert false
  in
  let stream_verdicts_identical =
    Verif.Campaign.verdicts pooled = Verif.Campaign.verdicts streamed
  in
  let stream_jsonl_identical = String.equal seed_jsonl stream_jsonl in
  let stage name = Registry.sum_seconds metrics (Registry.stage_name name) in
  let seed_merge = stage Registry.Merge in
  let stream_merge =
    Registry.sum_seconds stream_metrics (Registry.stage_name Registry.Merge)
  in
  let merge_ratio = if seed_merge > 0.0 then stream_merge /. seed_merge else 1.0 in
  let queue_wait = Registry.sum_seconds metrics "campaign_queue_wait_seconds" in
  let speedup =
    if pooled.Verif.Campaign.wall_seconds > 0.0 then
      sequential.Verif.Campaign.wall_seconds
      /. pooled.Verif.Campaign.wall_seconds
    else 0.0
  in
  let queue = pooled.Verif.Campaign.queue in
  Printf.printf
    "jobs=%d: %.2fs wall (seq %.2fs, speedup %.2fx)  synth %.3fs  vt %.2fs\n"
    pooled.Verif.Campaign.workers pooled.Verif.Campaign.wall_seconds
    sequential.Verif.Campaign.wall_seconds speedup
    (synth_seconds_sum pooled)
    (Verif.Campaign.vt_seconds_sum pooled);
  Printf.printf
    "        queue: chunk %d, %d acquisitions (%d contended)  cons: %d DLS \
     hits, %d shard acquisitions (%d contended)\n"
    queue.Verif.Campaign.chunk queue.Verif.Campaign.acquisitions
    queue.Verif.Campaign.contention
    (cons_after.Formula.dls_hits - cons_before.Formula.dls_hits)
    (cons_after.Formula.shard_acquisitions
    - cons_before.Formula.shard_acquisitions)
    (cons_after.Formula.shard_contention - cons_before.Formula.shard_contention);
  Printf.printf
    "        stages (lib/obs): simulate %.2fs, check %.2fs, synth %.3fs, \
     parse %.3fs, merge %.3fs, queue-wait %.3fs\n"
    (stage Registry.Simulate) (stage Registry.Check)
    (stage Registry.Synthesize) (stage Registry.Parse) (stage Registry.Merge)
    queue_wait;
  Printf.printf "        verdicts identical: %b, merged JSONL identical: %b\n"
    verdicts_identical jsonl_identical;
  Printf.printf
    "        streaming: %.2fs wall  merge %.4fs vs seed %.4fs (%.2fx)  live \
     %dk vs seed %dk words  window %d (peak %d, %d waits)\n"
    streamed.Verif.Campaign.wall_seconds stream_merge seed_merge merge_ratio
    (stream_live / 1000) (seed_live / 1000) stream_stats.Verif.Campaign.window
    stream_stats.Verif.Campaign.peak_window
    stream_stats.Verif.Campaign.backpressure_waits;
  Printf.printf
    "        streaming identical to seed: verdicts %b, JSONL %b\n"
    stream_verdicts_identical stream_jsonl_identical;
  let slowdown = jobs_n > 1 && speedup < 1.0 in
  if slowdown then begin
    Printf.printf
      "*** WARNING: parallel campaign is SLOWER than sequential (%.2fx at \
       jobs=%d) ***\n"
      speedup jobs_n;
    if cores < 2 then
      Printf.printf
        "*** (only %d hardware core available: speedup is bounded by 1.0 \
         here; the identity columns are the gate) ***\n"
        cores
  end;
  let module Json = Sctc.Trace.Json in
  append_campaign_record ~table:"campaign"
       [
         ("unix_time", Json.int (int_of_float (Unix.time ())));
         ("git_rev", Json.string (Lazy.force git_rev));
         ("scale", Json.int !scale);
         ("jobs", Json.int pooled.Verif.Campaign.workers);
         ("cores", Json.int cores);
         (* the parallel-speedup expectation only holds where the pool
            could actually parallelize; single-core rows record it as
            unexpected so trajectory readers skip them, as the gate does *)
         ("speedup_expected", Json.bool (cores >= 2 && jobs_n > 1));
         ("ops", Json.int (List.length plan.Harness.ops));
         ("cases_per_op", Json.int plan.Harness.cases_per_op);
         ("seq_seconds", Json.float sequential.Verif.Campaign.wall_seconds);
         ("par_seconds", Json.float pooled.Verif.Campaign.wall_seconds);
         ("speedup", Json.float speedup);
         ("synth_seconds", Json.float (synth_seconds_sum pooled));
         ("vt_seconds", Json.float (Verif.Campaign.vt_seconds_sum pooled));
         ("verdicts_identical", Json.bool verdicts_identical);
         ("jsonl_identical", Json.bool jsonl_identical);
         ("queue_chunk", Json.int queue.Verif.Campaign.chunk);
         ("queue_acquisitions", Json.int queue.Verif.Campaign.acquisitions);
         ("queue_contention", Json.int queue.Verif.Campaign.contention);
         ( "cons_dls_hits",
           Json.int (cons_after.Formula.dls_hits - cons_before.Formula.dls_hits)
         );
         ( "cons_shard_acquisitions",
           Json.int
             (cons_after.Formula.shard_acquisitions
             - cons_before.Formula.shard_acquisitions) );
         ( "cons_shard_contention",
           Json.int
             (cons_after.Formula.shard_contention
             - cons_before.Formula.shard_contention) );
         ( "automaton_cache_hits",
           Json.int
             (cache_after.Ar_automaton.cache_hits
             - cache_before.Ar_automaton.cache_hits) );
         ( "automaton_cache_misses",
           Json.int
             (cache_after.Ar_automaton.cache_misses
             - cache_before.Ar_automaton.cache_misses) );
         ("stage_simulate_seconds", Json.float (stage Registry.Simulate));
         ("stage_check_seconds", Json.float (stage Registry.Check));
         ("stage_synthesize_seconds", Json.float (stage Registry.Synthesize));
         ("stage_parse_seconds", Json.float (stage Registry.Parse));
         ("stage_merge_seconds", Json.float seed_merge);
         ("queue_wait_seconds", Json.float queue_wait);
         ( "check_triggers",
           Json.int (Registry.total metrics "sctc_triggers_total") );
         ("stream_wall_seconds",
          Json.float streamed.Verif.Campaign.wall_seconds);
         ("stream_merge_seconds", Json.float stream_merge);
         ("merge_ratio", Json.float merge_ratio);
         ("seed_live_words", Json.int seed_live);
         ("stream_live_words", Json.int stream_live);
         ("stream_window", Json.int stream_stats.Verif.Campaign.window);
         ( "stream_peak_window",
           Json.int stream_stats.Verif.Campaign.peak_window );
         ( "stream_backpressure_waits",
           Json.int stream_stats.Verif.Campaign.backpressure_waits );
         ("stream_verdicts_identical", Json.bool stream_verdicts_identical);
         ("stream_jsonl_identical", Json.bool stream_jsonl_identical);
       ];
  let identity_ok =
    verdicts_identical && jsonl_identical && stream_verdicts_identical
    && stream_jsonl_identical
  in
  (* the streaming gates: the merge must cost well under half the seed
     engine's (a 5ms absolute floor keeps sub-millisecond CI merges from
     flaking the ratio), and live memory after the run must beat the
     seed engine, which retains every event buffer until the merge.
     The merge ratio is only comparable on the 1-worker rounds: pooled
     streaming emission overlaps simulation, so its wall-clock stage
     charge absorbs preemption by the concurrently running workers,
     while the seed merge always runs solo after the pool joins *)
  let merge_ok =
    jobs_n > 1
    || stream_merge <= 0.5 *. seed_merge
    || stream_merge < 0.005
  in
  let memory_ok = stream_live < seed_live in
  if not merge_ok then
    Printf.printf
      "*** WARNING: streaming merge not under 0.5x the seed engine \
       (%.4fs vs %.4fs) ***\n"
      stream_merge seed_merge;
  if not memory_ok then
    Printf.printf
      "*** WARNING: streaming engine retained more live words than the \
       seed engine (%d vs %d) ***\n"
      stream_live seed_live;
  (* the CI gate: identity must always hold; a slowdown only fails the
     gate where the hardware could actually have parallelized the pool *)
  identity_ok && merge_ok && memory_ok && not (slowdown && cores >= 2)

(* The documented overhead budget of lib/obs: one pooled run with a live
   registry vs one with [Registry.null] at the same worker count. The
   gate allows 5% relative overhead with a 0.05s absolute floor, so
   timing noise on sub-second CI runs cannot flake the gate. *)
let run_overhead_check ~plan ~jobs_n =
  let run metrics =
    (Harness.run_campaign ~workers:jobs_n { plan with Harness.metrics })
      .Verif.Campaign.wall_seconds
  in
  (* best of two per configuration, interleaved (null, metered, null,
     metered): scheduler noise and allocator warm-up drift degrade one
     round, not both, so the delta reflects the instrumentation, not
     the box *)
  let rec rounds k (disabled, metered) =
    if k = 0 then (disabled, metered)
    else
      let disabled = min disabled (run Registry.null) in
      let metered = min metered (run (Registry.create ())) in
      rounds (k - 1) (disabled, metered)
  in
  let disabled, metered = rounds 2 (infinity, infinity) in
  let overhead = metered -. disabled in
  let relative = if disabled > 0.0 then overhead /. disabled else 0.0 in
  (* the absolute noise floor grows with the workload: timing jitter on
     a loaded runner is proportional to how long the rounds run *)
  let floor = 0.05 *. float_of_int !scale in
  let ok = overhead <= floor || relative <= 0.05 in
  Printf.printf
    "metrics overhead at jobs=%d: %.3fs metered vs %.3fs disabled (%+.1f%%) \
     -- %s (gate: <= 5%% or <= %.2fs)\n"
    jobs_n metered disabled (100.0 *. relative)
    (if ok then "ok" else "EXCEEDED")
    floor;
  ok

let run_campaign_bench () =
  let sweep = if !ci_mode then [ !jobs ] else [ 1; 2; 4; 7 ] in
  print_endline "=========================================================";
  Printf.printf
    "Parallel campaign -- Fig. 8-style rows, jobs sweep {%s}%s\n"
    (String.concat "," (List.map string_of_int sweep))
    (if !ci_mode then " (CI smoke)" else "");
  print_endline "=========================================================";
  let plan =
    {
      Harness.default_plan with
      Harness.ops = Spec.all_ops;
      approaches = [ 2 ];
      cases_per_op = 40 * !scale;
      bound = Some 2000;
      fault_rate = 0.03;
      seed = 13;
    }
  in
  let cores = Domain.recommended_domain_count () in
  let sequential = Harness.run_campaign ~workers:1 plan in
  Printf.printf "%d ops x %d cases on %d core(s); sequential baseline %.2fs\n"
    (List.length plan.Harness.ops)
    plan.Harness.cases_per_op cores sequential.Verif.Campaign.wall_seconds;
  let ok =
    List.fold_left
      (fun ok jobs_n -> campaign_round ~plan ~sequential ~cores jobs_n && ok)
      true sweep
  in
  let overhead_ok =
    run_overhead_check ~plan ~jobs_n:(List.fold_left max 1 sweep)
  in
  Printf.printf "recorded in BENCH_campaign.json\n\n";
  ok && overhead_ok

(* ------------------------------------------------------------------ *)
(* Checker trigger path: compiled plan vs the pre-plan stepper         *)

(* A faithful reimplementation of the trigger path as it was before the
   compiled trigger plan: properties kept in a reversed list that is
   [List.rev]ed on every trigger, one sampler closure per (monitor,
   proposition) so shared propositions are probed once per monitor,
   name resolution by linear string search, and uncached
   [Progression.step]. This is the baseline the plan is measured
   against — same formulas, same samplers, same stimulus. *)
type legacy_property = {
  l_name : string;
  mutable l_current : Formula.t;
  l_support : string array;
  l_samplers : (unit -> bool) array;
}

let legacy_add samplers properties_rev ~name formula =
  let support = Array.of_list (Formula.props formula) in
  properties_rev :=
    {
      l_name = name;
      l_current = formula;
      l_support = support;
      l_samplers =
        Array.map (fun prop -> List.assoc prop samplers) support;
    }
    :: !properties_rev

let legacy_step properties_rev =
  List.iter
    (fun p ->
      if not (Verdict.is_final (Progression.verdict p.l_current)) then begin
        let samples = Array.map (fun sampler -> sampler ()) p.l_samplers in
        let valuation name =
          let rec find i =
            if i >= Array.length p.l_support then
              invalid_arg ("legacy stepper: not in support: " ^ name)
            else if String.equal p.l_support.(i) name then samples.(i)
            else find (i + 1)
          in
          find 0
        in
        p.l_current <- Progression.step p.l_current valuation
      end)
    (List.rev !properties_rev)

let legacy_verdicts properties_rev =
  List.rev_map
    (fun p -> (p.l_name, Progression.verdict p.l_current))
    !properties_rev

(* The EEE property set over a synthetic steady-state stimulus: each
   operation is "called" on its own phase of a 97-tick cycle and
   answered with its first legal return code 5 ticks later, so every
   F[50] obligation is discharged in-window and no monitor ever
   settles — the steady-state trigger regime of a passing campaign. *)
let checker_bench_samplers tick =
  List.concat_map
    (fun op ->
      let index = Spec.op_code op - 1 in
      let called = 13 * index and answered = (13 * index) + 5 in
      (Spec.called_prop op, fun () -> !tick mod 97 = called)
      :: List.map
           (fun code ->
             ( Spec.return_prop op code,
               if code = List.hd (Spec.expected_returns op) then
                 fun () -> !tick mod 97 = answered
               else fun () -> false ))
           (Spec.expected_returns op))
    Spec.all_ops

let checker_property_texts =
  List.map
    (fun op -> (Spec.property_name op, Spec.property_text ~bound:50 op))
    Spec.all_ops

let time_triggers step count =
  let started = Unix.gettimeofday () in
  for _ = 1 to count do
    step ()
  done;
  Unix.gettimeofday () -. started

let run_checker_bench () =
  print_endline "=========================================================";
  Printf.printf
    "Checker trigger path -- compiled plan vs pre-plan stepper (scale %d)\n"
    !scale;
  print_endline "=========================================================";
  let triggers = 200_000 * !scale in
  let warmup = 10_000 in
  let build_checker engine =
    let tick = ref 0 in
    let checker = Checker.create ~name:"bench" () in
    List.iter
      (fun (name, sampler) -> Checker.register_sampler checker name sampler)
      (checker_bench_samplers tick);
    List.iter
      (fun (name, text) -> Checker.add_property_text ~engine checker ~name text)
      checker_property_texts;
    let step () =
      incr tick;
      Checker.step checker
    in
    (checker, step)
  in
  let build_legacy () =
    let tick = ref 0 in
    let samplers = checker_bench_samplers tick in
    let properties_rev = ref [] in
    List.iter
      (fun (name, text) ->
        legacy_add samplers properties_rev ~name (Sctc.Prop.parse_exn ~syntax:`Fltl text))
      checker_property_texts;
    let step () =
      incr tick;
      legacy_step properties_rev
    in
    (properties_rev, step)
  in
  (* correctness first: every engine (and the pre-plan reference stepper)
     agrees on every verdict, per step *)
  let engine_checkers =
    List.map
      (fun engine ->
        let checker, probe = build_checker engine in
        (engine, checker, probe))
      Sctc.Engine.all
  in
  let plan_checker =
    match engine_checkers with (_, checker, _) :: _ -> checker | [] -> assert false
  in
  let legacy_props, legacy_probe = build_legacy () in
  let agree = ref true in
  for _ = 1 to 2_000 do
    legacy_probe ();
    let reference = List.map snd (legacy_verdicts legacy_props) in
    List.iter
      (fun (_, checker, probe) ->
        probe ();
        if List.map snd (Checker.verdicts checker) <> reference then
          agree := false)
      engine_checkers
  done;
  (* warm each path (transition cache, allocator, promotions), then time *)
  let _, legacy_step = build_legacy () in
  let _, plan_step = build_checker Checker.Otf in
  let _, explicit_step = build_checker Checker.Explicit in
  let _, il_step = build_checker Checker.Il in
  let _, hybrid_step = build_checker Checker.Hybrid in
  let _, auto_step = build_checker Checker.Auto in
  ignore (time_triggers legacy_step warmup);
  ignore (time_triggers plan_step warmup);
  ignore (time_triggers explicit_step warmup);
  ignore (time_triggers il_step warmup);
  ignore (time_triggers hybrid_step warmup);
  ignore (time_triggers auto_step warmup);
  let legacy_seconds = time_triggers legacy_step triggers in
  let cache_before = Transition_cache.stats () in
  let plan_seconds = time_triggers plan_step triggers in
  let cache_after = Transition_cache.stats () in
  let explicit_seconds = time_triggers explicit_step triggers in
  let il_seconds = time_triggers il_step triggers in
  let hybrid_seconds = time_triggers hybrid_step triggers in
  let auto_seconds = time_triggers auto_step triggers in
  let tps seconds =
    if seconds > 0.0 then float_of_int triggers /. seconds else 0.0
  in
  let legacy_tps = tps legacy_seconds
  and plan_tps = tps plan_seconds
  and explicit_tps = tps explicit_seconds
  and il_tps = tps il_seconds
  and hybrid_tps = tps hybrid_seconds
  and auto_tps = tps auto_seconds in
  let speedup = if legacy_tps > 0.0 then plan_tps /. legacy_tps else 0.0 in
  (* the tentpole claim: one default engine at least as fast as both
     fixed choices, within a 5% noise allowance *)
  let auto_dominates = auto_tps >= 0.95 *. Float.max plan_tps explicit_tps in
  let hits = cache_after.Transition_cache.hits - cache_before.Transition_cache.hits in
  let misses =
    cache_after.Transition_cache.misses - cache_before.Transition_cache.misses
  in
  let hit_rate =
    if hits + misses > 0 then
      float_of_int hits /. float_of_int (hits + misses)
    else 0.0
  in
  Printf.printf "%d triggers, %d properties, %d propositions\n" triggers
    (List.length checker_property_texts)
    (List.length (Checker.proposition_names plan_checker));
  Printf.printf "  %-28s %12.0f triggers/s  (%.3fs)\n"
    "pre-plan stepper (on-the-fly)" legacy_tps legacy_seconds;
  Printf.printf "  %-28s %12.0f triggers/s  (%.3fs)  speedup %.2fx\n"
    "compiled plan (on-the-fly)" plan_tps plan_seconds speedup;
  Printf.printf "  %-28s %12.0f triggers/s  (%.3fs)\n"
    "compiled plan (explicit)" explicit_tps explicit_seconds;
  Printf.printf "  %-28s %12.0f triggers/s  (%.3fs)\n"
    "compiled plan (il tables)" il_tps il_seconds;
  Printf.printf "  %-28s %12.0f triggers/s  (%.3fs)\n"
    "compiled plan (hybrid)" hybrid_tps hybrid_seconds;
  Printf.printf "  %-28s %12.0f triggers/s  (%.3fs)  dominates: %b\n"
    "compiled plan (auto)" auto_tps auto_seconds auto_dominates;
  Printf.printf
    "  progression cache: %d hits, %d misses (steady-state hit rate %.4f)\n"
    hits misses hit_rate;
  Printf.printf "  per-step verdicts identical to reference: %b\n" !agree;
  let module Json = Sctc.Trace.Json in
  append_campaign_record ~table:"checker"
       [
         ("unix_time", Json.int (int_of_float (Unix.time ())));
         ("git_rev", Json.string (Lazy.force git_rev));
         ("scale", Json.int !scale);
         ("triggers", Json.int triggers);
         ("properties", Json.int (List.length checker_property_texts));
         ( "propositions",
           Json.int (List.length (Checker.proposition_names plan_checker)) );
         ("legacy_tps", Json.float legacy_tps);
         ("plan_tps", Json.float plan_tps);
         ("explicit_tps", Json.float explicit_tps);
         ("il_tps", Json.float il_tps);
         ("hybrid_tps", Json.float hybrid_tps);
         ("auto_tps", Json.float auto_tps);
         ("auto_dominates", Json.bool auto_dominates);
         ("speedup", Json.float speedup);
         ("prog_cache_hits", Json.int hits);
         ("prog_cache_misses", Json.int misses);
         ("prog_cache_hit_rate", Json.float hit_rate);
         ("verdicts_identical", Json.bool !agree);
       ];
  Printf.printf "recorded in BENCH_campaign.json\n\n";
  (* the CI gate: verdict agreement must always hold; the throughput
     bar is set below the documented steady-state speedup so a loaded
     runner cannot flake it; and the default engine must dominate both
     fixed choices (within the 5% noise allowance above) *)
  !agree && speedup >= 2.0 && auto_dominates

(* ------------------------------------------------------------------ *)
(* Simulate: bytecode VM vs tree-walking interpreter on the EEE model  *)

(* Raw execution throughput of one backend on the derived EEE software
   model: per round, repeated fixed-fuel runs with the default hooks
   (fully deterministic, identical on both backends) until [target]
   statements have been executed; the best of three rounds is reported,
   so a loaded runner degrades both backends instead of flaking the
   ratio. Returns the resolved backend name so the row records what
   actually ran. *)
let exec_throughput ~target backend =
  let info = (Eee.Eee_program.derive ()).Esw.C2sc.model_info in
  let exec = Minic.Exec.create ~backend info in
  let hooks = Minic.Exec.default_hooks () in
  (* warm-up: touch the code path (and the VM's frames) before timing *)
  ignore (Minic.Exec.run ~fuel:20_000 ~hooks exec ~entry:"main");
  let round () =
    let statements = ref 0 and seconds = ref 0.0 in
    while !statements < target do
      Minic.Exec.reset exec;
      let started = Unix.gettimeofday () in
      ignore (Minic.Exec.run ~fuel:target ~hooks exec ~entry:"main");
      seconds := !seconds +. (Unix.gettimeofday () -. started);
      statements := !statements + Minic.Exec.statements_executed exec
    done;
    (!statements, !seconds)
  in
  let best =
    List.fold_left
      (fun acc () ->
        let statements, seconds = round () in
        match acc with
        | Some (_, s, st) when float_of_int st /. s
                               >= float_of_int statements /. seconds ->
          acc
        | _ -> Some (Minic.Exec.kind_name exec, seconds, statements))
      None
      [ (); (); () ]
  in
  match best with
  | Some (kind, seconds, statements) -> (kind, statements, seconds)
  | None -> assert false

(* One full (small) EEE campaign per backend: same plan, same seed, only
   [plan.backend] differs. The determinism contract across backends is
   that verdicts and the merged golden trace are byte-identical. *)
let simulate_campaign backend =
  let metrics = Registry.create () in
  let plan =
    {
      Harness.default_plan with
      Harness.ops = Spec.all_ops;
      approaches = [ 2 ];
      cases_per_op = 10 * !scale;
      bound = Some 2000;
      fault_rate = 0.03;
      seed = 29;
      backend;
      metrics;
    }
  in
  let summary = Harness.run_campaign ~workers:1 plan in
  (summary, metrics)

let run_simulate_bench () =
  print_endline "=========================================================";
  Printf.printf
    "Simulate -- bytecode VM vs reference interpreter on the EEE model \
     (scale %d)\n"
    !scale;
  print_endline "=========================================================";
  let target = 2_000_000 * !scale in
  let interp_kind, interp_statements, interp_seconds =
    exec_throughput ~target Minic.Exec.Interp
  in
  let vm_kind, vm_statements, vm_seconds =
    exec_throughput ~target Minic.Exec.Vm
  in
  let sps statements seconds =
    if seconds > 0.0 then float_of_int statements /. seconds else 0.0
  in
  let interp_sps = sps interp_statements interp_seconds
  and vm_sps = sps vm_statements vm_seconds in
  let speedup = if interp_sps > 0.0 then vm_sps /. interp_sps else 0.0 in
  Printf.printf "  %-28s %12.0f statements/s  (%d statements, %.3fs)\n"
    ("interpreter (" ^ interp_kind ^ ")")
    interp_sps interp_statements interp_seconds;
  Printf.printf
    "  %-28s %12.0f statements/s  (%d statements, %.3fs)  speedup %.2fx\n"
    ("bytecode VM (" ^ vm_kind ^ ")")
    vm_sps vm_statements vm_seconds speedup;
  (* determinism contract: one small campaign per backend, only
     [plan.backend] differing — verdicts and golden JSONL must match *)
  let interp_summary, interp_metrics = simulate_campaign Minic.Exec.Interp in
  let vm_summary, vm_metrics = simulate_campaign Minic.Exec.Vm in
  let verdicts_identical =
    Verif.Campaign.verdicts interp_summary = Verif.Campaign.verdicts vm_summary
  in
  let jsonl_identical =
    String.equal
      (Verif.Campaign.to_jsonl interp_summary)
      (Verif.Campaign.to_jsonl vm_summary)
  in
  let interp_sim_statements =
    Registry.total interp_metrics "sim_interp_statements_total"
  and vm_sim_statements = Registry.total vm_metrics "sim_vm_statements_total" in
  Printf.printf
    "  campaign identity: verdicts %b, merged JSONL %b (sim_interp %d / \
     sim_vm %d statements via lib/obs)\n"
    verdicts_identical jsonl_identical interp_sim_statements vm_sim_statements;
  let cores = Domain.recommended_domain_count () in
  let module Json = Sctc.Trace.Json in
  append_campaign_record ~table:"simulate"
       [
         ("unix_time", Json.int (int_of_float (Unix.time ())));
         ("git_rev", Json.string (Lazy.force git_rev));
         ("scale", Json.int !scale);
         ("jobs", Json.int 1);
         ("cores", Json.int cores);
         (* VM-vs-interpreter is single-threaded: the expectation holds
            on any core count, unlike the campaign table's pool rows *)
         ("speedup_expected", Json.bool true);
         ("target_statements", Json.int target);
         ("interp_statements", Json.int interp_statements);
         ("interp_seconds", Json.float interp_seconds);
         ("interp_sps", Json.float interp_sps);
         ("vm_statements", Json.int vm_statements);
         ("vm_seconds", Json.float vm_seconds);
         ("vm_sps", Json.float vm_sps);
         ("speedup", Json.float speedup);
         ("verdicts_identical", Json.bool verdicts_identical);
         ("jsonl_identical", Json.bool jsonl_identical);
         ("sim_interp_statements_total", Json.int interp_sim_statements);
         ("sim_vm_statements_total", Json.int vm_sim_statements);
       ];
  Printf.printf "recorded in BENCH_campaign.json\n\n";
  (* the CI gate: cross-backend identity must always hold; the
     throughput bar is set below the documented steady-state speedup so
     a loaded runner cannot flake it *)
  verdicts_identical && jsonl_identical && speedup >= 2.0

(* ------------------------------------------------------------------ *)
(* SMC: Wald's sequential test vs the fixed-size Chernoff bound        *)

type smc_scenario = {
  smc_name : string;
  smc_op : Spec.op;
  smc_bound : int option;
  smc_faults : Smc.Faults.t;
  smc_spec : Smc.Runner.spec;
}

(* three probability regimes over the fault-injected EEE software: a
   clear pass (p near 1), a clear fail (tight bound, heavy torn writes)
   and a fixed-size estimation of the same failing scenario — the row
   the SPRT's sample count is compared against *)
let smc_scenarios =
  [
    {
      smc_name = "read/h0";
      smc_op = Spec.Read;
      smc_bound = None;
      smc_faults =
        { Smc.Faults.none with Smc.Faults.decay = 0.0005; power_loss = 0.05 };
      smc_spec =
        Smc.Runner.Sequential
          { theta = 0.5; delta = 0.1; alpha = 0.05; beta = 0.05;
            max_samples = None };
    };
    {
      smc_name = "write-tb50/h1";
      smc_op = Spec.Write;
      smc_bound = Some 50;
      smc_faults = { Smc.Faults.none with Smc.Faults.power_loss = 0.4 };
      smc_spec =
        Smc.Runner.Sequential
          { theta = 0.8; delta = 0.05; alpha = 0.05; beta = 0.05;
            max_samples = None };
    };
    {
      smc_name = "write-tb50/est";
      smc_op = Spec.Write;
      smc_bound = Some 50;
      smc_faults = { Smc.Faults.none with Smc.Faults.power_loss = 0.4 };
      smc_spec = Smc.Runner.Fixed { eps = 0.15; delta = 0.2 };
    };
  ]

let run_smc_scenario scenario =
  let plan =
    {
      Harness.default_plan with
      Harness.ops = [ scenario.smc_op ];
      approaches = [ 2 ];
      cases_per_op = 1;
      bound = scenario.smc_bound;
      fault_rate = 0.02;
      faults = scenario.smc_faults;
      flash = Some (Harness.flash_quick_config ~fault_rate:0.02);
      seed = 23 + !scale;
    }
  in
  let report =
    Smc.Runner.run ~workers:!jobs ~label:scenario.smc_name
      ~job:(fun ~index ->
        Harness.smc_sample_job plan ~approach:2 ~op:scenario.smc_op ~index)
      ~succeeded:(Harness.smc_succeeded ?prop:None)
      scenario.smc_spec
  in
  let cancelled =
    match report.Smc.Runner.stream with
    | Some stats -> stats.Verif.Campaign.cancelled_jobs
    | None -> 0
  in
  Printf.printf "  %-16s %-8s %9s %8d %9d %7d %8.4f %7.2fs%s\n"
    scenario.smc_name
    (Spec.op_name scenario.smc_op)
    (Format.asprintf "%a" Smc.Runner.pp_decision report.Smc.Runner.decision)
    report.Smc.Runner.samples report.Smc.Runner.chernoff_n cancelled
    report.Smc.Runner.p_hat report.Smc.Runner.wall_seconds
    (if report.Smc.Runner.forced then "  (forced)" else "");
  let module Json = Sctc.Trace.Json in
  let theta, delta, alpha, beta, eps =
    match scenario.smc_spec with
    | Smc.Runner.Sequential { theta; delta; alpha; beta; _ } ->
      (theta, delta, alpha, beta, 0.0)
    | Smc.Runner.Fixed { eps; delta } -> (0.0, delta, 0.0, 0.0, eps)
  in
  append_campaign_record ~table:"smc"
    [
      ("unix_time", Json.int (int_of_float (Unix.time ())));
      ("git_rev", Json.string (Lazy.force git_rev));
      ("scale", Json.int !scale);
      ("jobs", Json.int !jobs);
      ("scenario", Json.string scenario.smc_name);
      ("op", Json.string (Spec.op_name scenario.smc_op));
      ( "bound",
        match scenario.smc_bound with
        | Some b -> Json.int b
        | None -> Json.int 0 );
      ("faults", Json.string (Smc.Faults.to_string scenario.smc_faults));
      ("theta", Json.float theta);
      ("delta", Json.float delta);
      ("alpha", Json.float alpha);
      ("beta", Json.float beta);
      ("eps", Json.float eps);
      ( "decision",
        Json.string
          (Format.asprintf "%a" Smc.Runner.pp_decision
             report.Smc.Runner.decision) );
      ("samples", Json.int report.Smc.Runner.samples);
      ("successes", Json.int report.Smc.Runner.successes);
      ("p_hat", Json.float report.Smc.Runner.p_hat);
      ("chernoff_n", Json.int report.Smc.Runner.chernoff_n);
      ("cancelled_jobs", Json.int cancelled);
      ("forced", Json.bool report.Smc.Runner.forced);
      ("early_stopped", Json.bool report.Smc.Runner.early_stopped);
      ("errors", Json.int (List.length report.Smc.Runner.errors));
      ("wall_seconds", Json.float report.Smc.Runner.wall_seconds);
    ];
  match scenario.smc_spec with
  | Smc.Runner.Fixed _ ->
    (* estimation rows have no early-stop expectation; only crash-free *)
    report.Smc.Runner.errors = []
  | Smc.Runner.Sequential _ ->
    (* the CI gate: the sequential test must reach a real (un-forced)
       decision in strictly fewer samples than the fixed-size bound the
       same guarantees would cost, with no crashed samples *)
    report.Smc.Runner.decision <> Smc.Runner.Estimate
    && (not report.Smc.Runner.forced)
    && report.Smc.Runner.samples < report.Smc.Runner.chernoff_n
    && report.Smc.Runner.errors = []

let run_smc_bench () =
  print_endline "=========================================================";
  Printf.printf
    "SMC -- Wald SPRT vs fixed-size Chernoff bound (%d workers)\n" !jobs;
  print_endline "=========================================================";
  Printf.printf "  %-16s %-8s %9s %8s %9s %7s %8s %8s\n" "scenario" "op"
    "decision" "samples" "chernoff" "saved" "p_hat" "wall";
  let ok =
    List.fold_left
      (fun ok scenario -> run_smc_scenario scenario && ok)
      true smc_scenarios
  in
  Printf.printf "recorded in BENCH_campaign.json\n\n";
  ok

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let run_ablation () =
  print_endline "=========================================================";
  print_endline "Ablation -- AR engines: explicit synthesis vs on-the-fly";
  print_endline "=========================================================";
  Printf.printf "%-7s %-12s %10s %10s %8s\n" "bound" "engine" "synth(s)"
    "run(s)" "states";
  let steps = 100_000 in
  List.iter
    (fun bound ->
      List.iter
        (fun (engine_name, engine) ->
          let value = ref 0 in
          let checker = Checker.create ~name:"ablation" () in
          Checker.register_sampler checker "req" (fun () -> !value mod 97 = 1);
          Checker.register_sampler checker "ack" (fun () -> !value mod 97 = 9);
          let t0 = Unix.gettimeofday () in
          Checker.add_property_text ~engine checker ~name:"p"
            (Printf.sprintf "G (req -> F[%d] ack)" bound);
          let t1 = Unix.gettimeofday () in
          for _ = 1 to steps do
            incr value;
            Checker.step checker
          done;
          let t2 = Unix.gettimeofday () in
          let states =
            match engine with
            | Checker.Otf | Checker.Hybrid | Checker.Auto -> "-"
            | Checker.Explicit | Checker.Il ->
              string_of_int
                (Ar_automaton.num_states
                   (Ar_automaton.synthesize
                      (Sctc.Prop.parse_exn ~syntax:`Fltl
                         (Printf.sprintf "G (req -> F[%d] ack)" bound))))
          in
          Printf.printf "%-7d %-12s %10.3f %10.3f %8s\n" bound engine_name
            (t1 -. t0) (t2 -. t1) states)
        [ ("on-the-fly", Checker.Otf); ("explicit", Checker.Explicit) ])
    [ 100; 2000; 20000 ];
  print_newline ();
  print_endline "Ablation -- checker triggers per operation (Read, 20 cases)";
  List.iter
    (fun (name, session) ->
      Driver.install_spec session [ Spec.Read ];
      let config = { Driver.default_config with test_cases = 20; seed = 3 } in
      let outcome = Driver.run_campaign session config Spec.Read in
      Printf.printf "  %-12s %8d time units, %8d checker steps, %.3fs\n" name
        outcome.Verif.Result.time_units outcome.Verif.Result.triggers
        outcome.Verif.Result.vt_seconds)
    [
      ("approach 1", Harness.approach1 ~fault_rate:0.0 ~seed:9 ());
      ("approach 2", Harness.approach2 ~fault_rate:0.0 ~seed:9 ());
    ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)

let micro_tests () =
  let open Bechamel in
  let kernel_bench =
    let kernel = Sim.Kernel.create () in
    let counter = ref 0 in
    ignore
      (Sim.Kernel.spawn kernel ~name:"ticker" (fun () ->
           let rec loop () =
             incr counter;
             Sim.Kernel.wait_for kernel 1;
             loop ()
           in
           loop ()));
    let horizon = ref 0 in
    Test.make ~name:"sim: timed wait roundtrip"
      (Staged.stage (fun () ->
           horizon := !horizon + 1;
           Sim.Kernel.run ~max_time:!horizon kernel))
  in
  let progression_bench =
    let formula = Sctc.Prop.parse_exn ~syntax:`Fltl "G (a -> F[100] b)" in
    let state = ref formula in
    let flip = ref false in
    Test.make ~name:"automata: progression step"
      (Staged.stage (fun () ->
           flip := not !flip;
           let v name = if String.equal name "a" then !flip else false in
           state := Progression.step !state v;
           if Verdict.is_final (Progression.verdict !state) then
             state := formula))
  in
  let monitor_bench =
    let automaton =
      Ar_automaton.synthesize (Sctc.Prop.parse_exn ~syntax:`Fltl "G (a -> F[100] b)")
    in
    let flip = ref false in
    let monitor =
      Monitor.of_automaton ~name:"m" automaton ~binding:(fun name () ->
          if String.equal name "a" then !flip else false)
    in
    Test.make ~name:"automata: explicit monitor step"
      (Staged.stage (fun () ->
           flip := not !flip;
           ignore (Monitor.step monitor)))
  in
  let cpu_bench =
    let bus = Cpu.Bus.create () in
    let ram = Cpu.Ram.create ~name:"r" ~base:0 ~size:1024 in
    Cpu.Bus.attach bus (Cpu.Ram.device ram);
    Cpu.Ram.load ram 0
      (Cpu.Asm.assemble_words
         "start: addi r4, r4, 1\n sw r4, 512(r0)\n lw r5, 512(r0)\n jal r0, start");
    let core = Cpu.Cpu_core.create bus ~start_pc:0 () in
    Test.make ~name:"cpu: instruction"
      (Staged.stage (fun () -> Cpu.Cpu_core.step core))
  in
  let fm_bench =
    let x = Absref.Linexpr.var "x" and y = Absref.Linexpr.var "y" in
    let hyps =
      [ Absref.Linexpr.sub x y; Absref.Linexpr.sub y (Absref.Linexpr.const 3) ]
    in
    let goal = Absref.Linexpr.sub x (Absref.Linexpr.const 5) in
    Test.make ~name:"absref: FM entailment"
      (Staged.stage (fun () ->
           ignore (Absref.Fourier_motzkin.entails hyps goal)))
  in
  let sat_bench =
    let var i h = (3 * i) + h + 1 in
    let clauses = ref [] in
    for i = 0 to 3 do
      clauses := [| var i 0; var i 1; var i 2 |] :: !clauses
    done;
    for h = 0 to 2 do
      for i = 0 to 3 do
        for j = i + 1 to 3 do
          clauses := [| -var i h; -var j h |] :: !clauses
        done
      done
    done;
    let clauses = !clauses in
    Test.make ~name:"bmc: CDCL pigeonhole(4,3)"
      (Staged.stage (fun () -> ignore (Sat.solve ~num_vars:12 clauses)))
  in
  let exec_bench backend name =
    let info =
      Minic.Typecheck.check
        (Minic.C_parser.parse
           "int g; int main(void) { int i; for (i = 0; i < 100; i++) { g += i; } return g; }")
    in
    Test.make ~name
      (Staged.stage (fun () ->
           let exec = Minic.Exec.create ~backend info in
           ignore (Minic.Exec.run exec ~entry:"main")))
  in
  let interp_bench =
    exec_bench Minic.Exec.Interp "minic: interpret 100-iter loop"
  and vm_bench = exec_bench Minic.Exec.Vm "minic: VM 100-iter loop" in
  [
    kernel_bench; progression_bench; monitor_bench; cpu_bench; fm_bench;
    sat_bench; interp_bench; vm_bench;
  ]

let run_micro_suite () =
  print_endline "=========================================================";
  print_endline "Bechamel micro-benchmarks (ns per run, OLS estimate)";
  print_endline "=========================================================";
  let open Bechamel in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols (List.hd instances) results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ nanoseconds ] ->
            Printf.printf "  %-38s %12.1f ns/run\n" name nanoseconds
          | _ -> Printf.printf "  %-38s (no estimate)\n" name)
        analyzed)
    (micro_tests ());
  print_newline ()

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--table" :: value :: rest ->
      table := value;
      parse rest
    | "--scale" :: value :: rest ->
      scale := max 1 (int_of_string value);
      parse rest
    | "--timeout" :: value :: rest ->
      fig7_timeout := float_of_string value;
      parse rest
    | "--no-micro" :: rest ->
      run_micro := false;
      parse rest
    | "--jobs" :: value :: rest ->
      jobs := max 1 (int_of_string value);
      parse rest
    | "--ci" :: rest ->
      ci_mode := true;
      parse rest
    | _ :: rest -> parse rest
  in
  parse (List.tl args);
  Printf.printf
    "Reproduction harness -- Lettnin et al., DATE 2008 (scale %d)\n\n" !scale;
  let campaign_ok = ref true in
  (match !table with
  | "fig7" -> run_fig7 ()
  | "fig8" -> run_fig8 ()
  | "campaign" -> campaign_ok := run_campaign_bench ()
  | "checker" -> campaign_ok := run_checker_bench ()
  | "simulate" -> campaign_ok := run_simulate_bench ()
  | "smc" -> campaign_ok := run_smc_bench ()
  | "ablation" -> run_ablation ()
  | "micro" -> run_micro_suite ()
  | _ ->
    run_fig7 ();
    run_fig8 ();
    campaign_ok := run_campaign_bench ();
    let checker_ok = run_checker_bench () in
    let simulate_ok = run_simulate_bench () in
    let smc_ok = run_smc_bench () in
    campaign_ok := !campaign_ok && checker_ok && simulate_ok && smc_ok;
    run_ablation ();
    if !run_micro then run_micro_suite ());
  print_endline "done.";
  (* the CI smoke variant turns a broken determinism contract — or a
     slowdown the hardware can't excuse — into a failing exit code *)
  if !ci_mode && not !campaign_ok then exit 1
